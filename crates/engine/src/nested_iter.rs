//! The System R reference evaluator: nested iteration.
//!
//! This evaluator interprets a nested [`QueryBlock`] directly, with the
//! semantics the paper treats as ground truth:
//!
//! * The FROM clause is enumerated by nested iteration (a cartesian-product
//!   loop); WHERE predicates are applied per candidate binding, **simple
//!   predicates first** — System R evaluates the inner block "once for each
//!   tuple of the outer relation which satisfies all simple predicates on
//!   the outer relation" [SEL 79:33].
//! * A *correlated* inner block is re-evaluated for every qualifying outer
//!   tuple, re-scanning its relations through the buffer pool each time —
//!   the repeated-retrieval cost the paper sets out to eliminate.
//! * An *uncorrelated* inner block (type-N/A) is evaluated once: a scalar
//!   result is cached as a constant; a list result is materialized as a
//!   temporary file and re-scanned per membership test, mirroring System
//!   R's "evaluate Q into a list X and substitute" strategy (Section 2.2).
//! * Aggregates follow SQL semantics ([`crate::aggregate`]): `COUNT(∅)=0`,
//!   `MAX(∅)=NULL`, etc.; comparisons follow three-valued logic.
//!
//! Every correctness experiment in the paper compares a transformation
//! against this evaluator's output, and every benchmark uses its measured
//! page I/Os as the baseline.

use crate::aggregate::AggState;
use crate::error::EngineError;
use crate::pred::{compare_values, not3};
use crate::provider::TableProvider;
use crate::vec_exec::{self, Lane3, Template, VPred};
use crate::Result;
use nsql_vec::Batch;
use nsql_analyzer::normalized_block_signature;
use nsql_analyzer::resolve::{level_column_refs, predicate_column_refs};
use nsql_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, InRhs, Operand, Predicate, Quantifier, QueryBlock,
    ScalarExpr, SortDir,
};
use nsql_cache::{approx_relation_bytes, BlockEntry, QueryCache};
use nsql_exec_par::{run_workers, Morsels};
use nsql_storage::sort::SortKey;
use nsql_storage::{external_sort_threads, HeapFile, PageId, Storage, TraceEvent};
use nsql_types::{Column, ColumnType, FxHashMap, Relation, Schema, Tuple, Value};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Cached result of an uncorrelated inner block. Cloning is cheap: a
/// value or a page-id-list handle, never page data.
#[derive(Clone)]
enum Cached {
    Scalar(Value),
    List(HeapFile),
}

/// How a use site consumes an uncorrelated subquery's cached result:
/// scalar comparison operand, or materialized list (IN / EXISTS /
/// quantified).
#[derive(Clone, Copy)]
enum UseKind {
    Scalar,
    List,
}

/// How batched evaluation handles one nested conjunct: a verdict memo
/// keyed by the candidate's projection onto the conjunct's free outer
/// columns, or per-row fallback when those columns cannot be determined.
/// Verdicts memoize errors too ([`EngineError`] is `Clone`), deferred to
/// the replay phase so surfaced errors match nested iteration.
enum BatchPlan {
    PerRow,
    Memo(Vec<usize>, FxHashMap<Tuple, Result<Option<bool>>>),
}

/// Resolved FROM clause of a block: the (requalified) files and the scope
/// schema they jointly define. Computed once per block per query — a
/// correlated inner block is *evaluated* per outer tuple, but its name
/// resolution never changes, so re-deriving schemas each time is pure
/// allocation churn.
struct BlockInfo {
    files: Vec<HeapFile>,
    schema: Schema,
}

/// The scope chain during evaluation, innermost first. Holds borrowed
/// `(schema, tuple)` pairs: pushing a child scope copies a handful of
/// references instead of deep-cloning every enclosing schema and binding
/// (the dominant CPU cost of correlated-subquery evaluation before this
/// representation).
#[derive(Clone, Default)]
struct Env<'e> {
    scopes: Vec<(&'e Schema, &'e Tuple)>,
}

impl<'e> Env<'e> {
    /// The chain extended with an innermost scope. The result lives as long
    /// as the shortest borrow (`'s`), which is all a per-binding evaluation
    /// needs.
    fn child<'s>(&self, schema: &'s Schema, tuple: &'s Tuple) -> Env<'s>
    where
        'e: 's,
    {
        let mut scopes = Vec::with_capacity(self.scopes.len() + 1);
        scopes.push((schema, tuple));
        scopes.extend(self.scopes.iter().copied());
        Env { scopes }
    }

    /// Resolve a column against the chain (nearest scope wins).
    fn lookup(&self, c: &ColumnRef) -> Result<Value> {
        for (schema, tuple) in &self.scopes {
            match schema.resolve(c.table.as_deref(), &c.column) {
                Ok(i) => return Ok(tuple.get(i).clone()),
                Err(nsql_types::TypeError::AmbiguousColumn(n)) => {
                    return Err(EngineError::Type(nsql_types::TypeError::AmbiguousColumn(n)))
                }
                Err(_) => continue,
            }
        }
        Err(EngineError::Type(nsql_types::TypeError::UnknownColumn(c.to_string())))
    }
}

/// State shared between the main evaluator and its worker forks: the
/// uncorrelated-block cache and the per-query resolution memos. All three
/// are short-critical-section mutexes — workers only copy handles out.
struct IterShared {
    cache: Mutex<FxHashMap<usize, Cached>>,
    /// Per-query memo of each block's resolved FROM clause, keyed by block
    /// address (valid while the AST is borrowed; cleared after each query).
    blocks: Mutex<FxHashMap<usize, Arc<BlockInfo>>>,
    /// Per-query memo of [`is_correlated`](NestedIter::is_correlated),
    /// which is re-consulted for every outer binding.
    correlated: Mutex<FxHashMap<usize, bool>>,
    /// Vectorized-path memo: each block's simple conjuncts compiled to a
    /// predicate [`Template`], keyed by [`BlockInfo`] address. `None`
    /// records a block whose predicates decline compilation, so the row
    /// path is taken without recompiling per outer binding.
    templates: Mutex<FxHashMap<usize, Option<Arc<Template>>>>,
    /// Page → column-batch cache for the vectorized path. FROM files are
    /// base tables, immutable for the duration of one query (temporaries
    /// never reach the fast path), so content keyed by page id is stable;
    /// cleared in teardown with the other per-query memos. The cache only
    /// skips the row→column conversion — every access still charges
    /// `read_page`, leaving counted I/O untouched.
    batches: Mutex<FxHashMap<PageId, Arc<Batch>>>,
    /// Per-distinct-binding memo for fully-simple blocks (single FROM
    /// file, no nested conjuncts), keyed by block plus the outer values
    /// its template depends on. A hit charges the block's entire
    /// page-read sequence — exactly what re-evaluation would read — so
    /// the memo saves CPU, never counted I/O. Errors are never memoized.
    results: Mutex<ResultMemo>,
    /// Per-query memo of each block's normalized cross-query cache
    /// signature (`None` records a block that declines normalization),
    /// keyed by block address like [`IterShared::blocks`].
    signatures: Mutex<FxHashMap<usize, Option<Arc<BlockSig>>>>,
    /// Cross-query cache consults this query: hits and misses, for the
    /// EXPLAIN line. Shared with worker forks so the parallel path counts
    /// identically.
    xq_hits: AtomicU64,
    xq_misses: AtomicU64,
}

/// The per-binding result memo with its byte accounting: inserts stop once
/// the approximate resident size reaches the budget (no eviction — entries
/// die with the query), bounding memory on queries whose outer relation has
/// very many distinct correlation values.
#[derive(Default)]
struct ResultMemo {
    map: FxHashMap<(usize, Tuple), Arc<Relation>>,
    bytes: usize,
}

/// Default byte budget for [`ResultMemo`], used when the caller does not
/// configure one through [`NestedIter::with_memo_budget`].
const DEFAULT_MEMO_BUDGET: usize = 1 << 20;

/// A block's normalized cross-query cache identity: canonical text, the
/// free (outer) references whose values form the binding key, and the
/// single FROM table whose generation stamps the entry.
struct BlockSig {
    text: String,
    free: Vec<ColumnRef>,
    table: String,
}

/// One consult of the cross-query cache: the identity to probe with and,
/// on a miss, publish under.
struct XqProbe {
    cache: Arc<QueryCache>,
    sig: Arc<BlockSig>,
    binding: Tuple,
    generation: u64,
    epoch: u64,
}

/// The nested-iteration evaluator.
pub struct NestedIter<'a, T: TableProvider + ?Sized> {
    tables: &'a T,
    storage: Storage,
    shared: Arc<IterShared>,
    obs: Option<crate::ops::ExecObs>,
    vectorized: bool,
    query_cache: Option<Arc<QueryCache>>,
    memo_budget: usize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<'a, T: TableProvider + ?Sized> NestedIter<'a, T> {
    /// Evaluator over `tables`, counting I/O against `storage`.
    pub fn new(tables: &'a T, storage: Storage) -> Self {
        NestedIter {
            tables,
            storage,
            shared: Arc::new(IterShared {
                cache: Mutex::new(FxHashMap::default()),
                blocks: Mutex::new(FxHashMap::default()),
                correlated: Mutex::new(FxHashMap::default()),
                templates: Mutex::new(FxHashMap::default()),
                batches: Mutex::new(FxHashMap::default()),
                results: Mutex::new(ResultMemo::default()),
                signatures: Mutex::new(FxHashMap::default()),
                xq_hits: AtomicU64::new(0),
                xq_misses: AtomicU64::new(0),
            }),
            obs: None,
            vectorized: false,
            query_cache: None,
            memo_budget: DEFAULT_MEMO_BUDGET,
        }
    }

    /// Attach an observability sink. Morsel claims during parallel
    /// evaluation land on the sink's current operator; side-state only,
    /// never touching the trace/replay I/O accounting.
    pub fn with_obs(mut self, obs: crate::ops::ExecObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enable the vectorized fast path: blocks with a single FROM file
    /// evaluate their simple conjuncts with batch kernels, and fully-
    /// simple correlated blocks memoize per distinct outer binding. Page
    /// reads are charged identically either way, so results *and* counted
    /// I/O are byte-identical with the row path.
    pub fn with_vectorized(mut self, vectorized: bool) -> Self {
        self.vectorized = vectorized;
        self
    }

    /// Attach a cross-query result cache. Fully-simple inner blocks
    /// (single FROM table, subquery-free WHERE) consult it per distinct
    /// binding before evaluating and publish their results after; a hit
    /// recharges the block's full-scan read sequence, so counted I/O is
    /// byte-identical with an uncached evaluation.
    pub fn with_query_cache(mut self, cache: Arc<QueryCache>) -> Self {
        self.query_cache = Some(cache);
        self
    }

    /// Byte budget for the per-query, per-distinct-binding result memo of
    /// the vectorized path (default 1 MiB). The memo stops inserting at
    /// the budget; hits charge I/O identically either way.
    pub fn with_memo_budget(mut self, budget: usize) -> Self {
        self.memo_budget = budget;
        self
    }

    /// Cross-query cache consults so far: `(hits, misses)`. Zero/zero when
    /// no cache is attached.
    pub fn cache_counts(&self) -> (u64, u64) {
        (
            self.shared.xq_hits.load(Ordering::Relaxed),
            self.shared.xq_misses.load(Ordering::Relaxed),
        )
    }

    /// A worker's view of this evaluator: same tables, caches, and memos,
    /// different storage handle (a trace view during parallel evaluation).
    fn fork(&self, storage: Storage) -> NestedIter<'a, T> {
        NestedIter {
            tables: self.tables,
            storage,
            shared: Arc::clone(&self.shared),
            obs: self.obs.clone(),
            vectorized: self.vectorized,
            query_cache: self.query_cache.clone(),
            memo_budget: self.memo_budget,
        }
    }

    fn cache(&self) -> MutexGuard<'_, FxHashMap<usize, Cached>> {
        lock(&self.shared.cache)
    }

    /// Evaluate a top-level query.
    pub fn eval_query(&self, q: &QueryBlock) -> Result<Relation> {
        let result = self.eval_block(q, &Env::default());
        self.teardown();
        result
    }

    /// Cached temporaries are per-query; drop their pages. The memo maps
    /// are keyed by AST addresses, which are only stable within one
    /// query's borrow — clear them too.
    fn teardown(&self) {
        for (_, cached) in self.cache().drain() {
            if let Cached::List(f) = cached {
                f.drop_pages(&self.storage);
            }
        }
        lock(&self.shared.blocks).clear();
        lock(&self.shared.correlated).clear();
        lock(&self.shared.templates).clear();
        lock(&self.shared.batches).clear();
        lock(&self.shared.signatures).clear();
        let mut memo = lock(&self.shared.results);
        memo.map.clear();
        memo.bytes = 0;
    }

    // ----------------------------------------------------------- parallel

    /// Evaluate a top-level query on `threads` workers. `threads <= 1` is
    /// exactly [`eval_query`](NestedIter::eval_query).
    ///
    /// The parallel path partitions the outermost FROM relation into page
    /// morsels, evaluates each morsel's bindings on a worker holding a
    /// *trace view* of storage (physical reads, no counting), then replays
    /// the per-morsel traces in morsel order through the real buffered
    /// storage. Because serial nested iteration fetches outer page *i+1*
    /// only after finishing page *i*'s bindings, the concatenated traces
    /// equal the serial page-access sequence — so the replay reproduces the
    /// serial I/O totals, hit/miss split, and final buffer state exactly.
    ///
    /// Uncorrelated inner blocks (which serial evaluation caches on first
    /// use) are pre-materialized before the fan-out, each under its own
    /// trace; a [`TraceEvent::Marker`] logged at every cache-use site tells
    /// the replay where to splice that trace in — at the *first* marker in
    /// replay order, mirroring lazy once-only evaluation.
    pub fn eval_query_threads(&self, q: &QueryBlock, threads: usize) -> Result<Relation>
    where
        T: Sync,
    {
        if threads <= 1 {
            return self.eval_query(q);
        }
        let result = self.eval_parallel(q, threads);
        self.teardown();
        result
    }

    fn eval_parallel(&self, q: &QueryBlock, threads: usize) -> Result<Relation>
    where
        T: Sync,
    {
        let info = self.block_info(q)?;
        let pages: Vec<PageId> = match info.files.first() {
            Some(f) if f.page_ids().len() > 1 => f.page_ids().to_vec(),
            // Nothing to partition — the serial path is already optimal.
            _ => return self.eval_block(q, &Env::default()),
        };

        // Pre-materialize every uncorrelated subquery block, children
        // before parents so a parent's captured trace contains markers
        // (not evaluations) for its cached children.
        let mut uses = Vec::new();
        collect_cached_uses(q, &mut uses);
        let mut mat: FxHashMap<usize, Vec<TraceEvent>> = FxHashMap::default();
        for (sub, kind) in uses {
            let key = sub as *const QueryBlock as usize;
            if mat.contains_key(&key) || self.is_correlated(sub)? {
                continue;
            }
            let sink = Arc::new(Mutex::new(Vec::new()));
            let fork = self.fork(self.storage.trace_view(Arc::clone(&sink)));
            let cached = fork.eval_block(sub, &Env::default()).and_then(|rel| {
                Ok(match kind {
                    UseKind::Scalar => Cached::Scalar(fork.scalar_from_relation(rel)?),
                    UseKind::List => Cached::List(fork.storage.store_relation(&rel)),
                })
            });
            match cached {
                Ok(c) => {
                    self.cache().insert(key, c);
                    mat.insert(key, std::mem::take(&mut *lock(&sink)));
                }
                Err(_) => {
                    // Re-run serially so the reported error and its I/O
                    // match the serial evaluation exactly.
                    self.teardown();
                    return self.eval_block(q, &Env::default());
                }
            }
        }

        let scope_schema = &info.schema;
        let conjuncts: Vec<&Predicate> = match &q.where_clause {
            Some(p) => p.conjuncts(),
            None => Vec::new(),
        };
        let (simple, nested): (Vec<&Predicate>, Vec<&Predicate>) =
            conjuncts.into_iter().partition(|p| !p.contains_subquery());

        // One page per morsel: binding evaluation (the inner loops) is the
        // heavy part, so fine-grained claims balance best, and the trace
        // slots stitch back together in page order regardless.
        type Slot = (Vec<TraceEvent>, Result<Vec<Tuple>>);
        let morsels = Morsels::new(pages.len(), 1);
        let slots: Vec<Mutex<Option<Slot>>> =
            (0..pages.len()).map(|_| Mutex::new(None)).collect();
        let morsel_op = self.obs.as_ref().and_then(|o| o.current());
        run_workers(threads.min(pages.len()), |w| {
            while let Some(range) = morsels.claim() {
                if let Some(op) = &morsel_op {
                    op.morsels.add(w, 1);
                }
                let sink = Arc::new(Mutex::new(Vec::new()));
                let fork = self.fork(self.storage.trace_view(Arc::clone(&sink)));
                let res =
                    fork.eval_morsel(&info, &pages[range.clone()], &simple, &nested);
                let events = std::mem::take(&mut *lock(&sink));
                *lock(&slots[range.start]) = Some((events, res));
            }
        });

        // Serial stitch: replay each morsel's trace through the real
        // storage, in page order, splicing pre-materialization traces at
        // first use. On a morsel error, replay up to and including that
        // morsel's partial trace — the serial evaluation would have stopped
        // there too.
        let mut survivors: Vec<Tuple> = Vec::new();
        let mut done: HashSet<usize> = HashSet::new();
        for slot in &slots {
            let (events, res) = lock(slot).take().expect("morsel left unevaluated");
            self.replay(&events, &mat, &mut done);
            survivors.append(&mut res?);
        }
        self.eval_select(q, scope_schema, survivors, &Env::default())
    }

    /// One worker morsel: the outer block's bindings restricted to the
    /// given outer pages, evaluated with this evaluator's (trace-view)
    /// storage. Mirrors [`eval_block`](NestedIter::eval_block)'s loop body,
    /// with depth 0 of the enumeration unrolled over the morsel's pages.
    fn eval_morsel(
        &self,
        info: &Arc<BlockInfo>,
        pids: &[PageId],
        simple: &[&Predicate],
        nested: &[&Predicate],
    ) -> Result<Vec<Tuple>> {
        let scope_schema = &info.schema;
        let env = Env::default();
        if self.vectorized && info.files.len() == 1 {
            // The morsel covers a page subset, so block-level memoization
            // does not apply; the template (closed at top level — any
            // outer ref fails the empty env and declines) and batch
            // kernels still do.
            if let Some(tpl) = self.template_for(info, simple) {
                if tpl.is_closed() {
                    let vp = tpl.instantiate(&[]);
                    return self.filter_pages_vec(&vp, info, pids, nested, &env);
                }
            }
        }
        let mut survivors: Vec<Tuple> = Vec::new();
        for &pid in pids {
            let page = self.storage.read_page(pid);
            for t in page.tuples() {
                self.enumerate(&info.files, 1, Tuple::default().join(t), &mut |binding| {
                    let here = env.child(scope_schema, &binding);
                    for p in simple {
                        if self.eval_pred(p, &here)? != Some(true) {
                            return Ok(());
                        }
                    }
                    for p in nested {
                        if self.eval_pred(p, &here)? != Some(true) {
                            return Ok(());
                        }
                    }
                    drop(here);
                    survivors.push(binding);
                    Ok(())
                })?;
            }
        }
        Ok(survivors)
    }

    /// Charge a captured trace against the real (counted, buffered)
    /// storage. `Read` goes through the buffer pool — hit/miss resolution
    /// happens here, against the same access sequence serial evaluation
    /// would have produced. The first `Marker(key)` splices in that block's
    /// pre-materialization trace (recursively: an uncorrelated block's
    /// trace may itself mark a cached child).
    fn replay(
        &self,
        events: &[TraceEvent],
        mat: &FxHashMap<usize, Vec<TraceEvent>>,
        done: &mut HashSet<usize>,
    ) {
        for ev in events {
            match *ev {
                TraceEvent::Read(pid) => {
                    let _ = self.storage.read_page(pid);
                }
                TraceEvent::ReadDirect(pid) => {
                    let _ = self.storage.read_page_direct(pid);
                }
                TraceEvent::Write(_) => self.storage.charge_write(),
                TraceEvent::Free(pid) => {
                    // The physical free already happened (trace-mode frees
                    // are physical); reproduce the buffer-frame release.
                    let _ = self.storage.evict_page(pid);
                }
                TraceEvent::Marker(key) => {
                    if done.insert(key) {
                        if let Some(sub) = mat.get(&key) {
                            self.replay(sub, mat, done);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------ batched

    /// Evaluate a top-level query with **batched correlated evaluation**
    /// (Guravannavar & Sudarshan): instead of re-evaluating a correlated
    /// conjunct once per qualifying outer tuple, project the outer bindings
    /// onto the columns the conjunct actually depends on, sort-deduplicate
    /// them with the counted external sort, evaluate the conjunct once per
    /// *distinct* binding, and replay the memoized verdicts over the outer
    /// rows in their original order.
    ///
    /// Three phases:
    ///
    /// 1. **Collect** — enumerate the FROM product and apply the simple
    ///    (subquery-free) conjuncts, keeping candidates in enumeration
    ///    order.
    /// 2. **Batch** — per nested conjunct, find its free outer columns
    ///    ([`conjunct_outer_cols`](Self::conjunct_outer_cols)); materialize
    ///    the candidates' projection onto those columns as a temporary
    ///    file, `external_sort_threads(..., unique, threads)` it, and
    ///    evaluate the conjunct once per surviving distinct binding into a
    ///    verdict memo. Errors are memoized too — not raised here.
    /// 3. **Replay** — walk the candidates in original order, consulting
    ///    each conjunct's memo with the candidate's projected key and
    ///    short-circuiting on the first non-true verdict, exactly like
    ///    nested iteration. The SELECT phase is shared with the other
    ///    strategies.
    ///
    /// Results and surfaced errors match nested iteration: the replay
    /// consults exactly the `(conjunct, binding)` pairs nested iteration
    /// would evaluate, in the same order, so the first error it raises is
    /// the one nested iteration would raise (errors batched eagerly but
    /// never consulted are swallowed — as nested iteration never evaluates
    /// them at all). Counted I/O is thread-invariant by construction: the
    /// only parallel step is the external sort, whose counted I/O is
    /// proven thread-invariant; everything else runs serially. The
    /// vectorized fast path is deliberately not consulted — batching is a
    /// row-strategy.
    pub fn eval_query_batched(&self, q: &QueryBlock, threads: usize) -> Result<Relation> {
        let result = self.eval_batched(q, threads);
        self.teardown();
        result
    }

    fn eval_batched(&self, q: &QueryBlock, threads: usize) -> Result<Relation> {
        let info = self.block_info(q)?;
        let scope_schema = &info.schema;
        let conjuncts: Vec<&Predicate> = match &q.where_clause {
            Some(p) => p.conjuncts(),
            None => Vec::new(),
        };
        let (simple, nested): (Vec<&Predicate>, Vec<&Predicate>) =
            conjuncts.into_iter().partition(|p| !p.contains_subquery());
        if nested.is_empty() {
            // Nothing to batch — the block is flat; evaluate it directly.
            return self.eval_block(q, &Env::default());
        }
        let env = Env::default();

        // Phase 1: candidates surviving the simple conjuncts, in
        // enumeration order (the order nested iteration would visit them).
        let mut candidates: Vec<Tuple> = Vec::new();
        self.enumerate(&info.files, 0, Tuple::default(), &mut |binding| {
            let here = env.child(scope_schema, &binding);
            for p in &simple {
                if self.eval_pred(p, &here)? != Some(true) {
                    return Ok(());
                }
            }
            drop(here);
            candidates.push(binding);
            Ok(())
        })?;

        // Phase 2: one verdict memo per nested conjunct, keyed by the
        // candidate's projection onto the conjunct's free outer columns.
        let mut plans: Vec<BatchPlan> = Vec::with_capacity(nested.len());
        for p in &nested {
            let Some(idx) = self.conjunct_outer_cols(p, scope_schema)? else {
                // A free reference resolves past this block (deeper
                // nesting) or ambiguously — evaluate this conjunct per
                // row, where nested iteration's scope chain applies.
                plans.push(BatchPlan::PerRow);
                continue;
            };
            let mut memo: FxHashMap<Tuple, Result<Option<bool>>> = FxHashMap::default();
            if candidates.is_empty() {
                // No candidate will ever consult the memo; skip the work.
            } else if idx.is_empty() {
                // The conjunct is closed over this block's scope: one
                // evaluation covers every candidate (`project(&[])` maps
                // each candidate to the empty key).
                memo.insert(Tuple::default(), self.eval_pred(p, &env));
            } else {
                let proj_schema = scope_schema.project(&idx);
                let file = HeapFile::from_tuples(
                    &self.storage,
                    proj_schema.clone(),
                    candidates.iter().map(|t| t.project(&idx)),
                );
                let keys: Vec<SortKey> = (0..idx.len()).map(SortKey::asc).collect();
                let sorted =
                    external_sort_threads(&self.storage, &file, &keys, true, threads);
                file.drop_pages(&self.storage);
                let visit = |b: &Tuple| -> std::result::Result<(), std::convert::Infallible> {
                    let here = env.child(&proj_schema, b);
                    memo.insert(b.clone(), self.eval_pred(p, &here));
                    Ok(())
                };
                match sorted.try_for_each(&self.storage, visit) {
                    Ok(()) => {}
                }
                sorted.drop_pages(&self.storage);
            }
            plans.push(BatchPlan::Memo(idx, memo));
        }

        // Phase 3: replay in original order with nested iteration's
        // conjunct order and short-circuiting.
        let mut survivors: Vec<Tuple> = Vec::new();
        'cand: for binding in candidates {
            for (p, plan) in nested.iter().zip(&plans) {
                let verdict = match plan {
                    BatchPlan::PerRow => {
                        let here = env.child(scope_schema, &binding);
                        self.eval_pred(p, &here)?
                    }
                    BatchPlan::Memo(idx, memo) => memo
                        .get(&binding.project(idx))
                        .cloned()
                        .expect("batched memo covers every candidate binding")?,
                };
                if verdict != Some(true) {
                    continue 'cand;
                }
            }
            survivors.push(binding);
        }
        self.eval_select(q, scope_schema, survivors, &env)
    }

    /// The outer-scope columns a nested conjunct depends on: every free
    /// column reference — at the conjunct's own level or free within its
    /// subquery blocks — resolved to an index in `scope_schema`
    /// (deduplicated, first-occurrence order). `Ok(None)` means some free
    /// reference does not resolve (or resolves ambiguously) against this
    /// block's scope — e.g. it belongs to a still-outer scope when this
    /// block is itself nested — and the caller must fall back to per-row
    /// evaluation for that conjunct.
    fn conjunct_outer_cols(
        &self,
        p: &Predicate,
        scope_schema: &Schema,
    ) -> Result<Option<Vec<usize>>> {
        let mut refs: Vec<ColumnRef> = Vec::new();
        for c in predicate_column_refs(p) {
            refs.push(c.clone());
        }
        let mut subs = Vec::new();
        collect_subqueries(p, &mut subs);
        let mut scopes: Vec<Schema> = Vec::new();
        for sub in subs {
            self.collect_block_free_refs(sub, &mut scopes, &mut refs)?;
        }
        let mut idx: Vec<usize> = Vec::new();
        for c in &refs {
            match scope_schema.try_resolve(c.table.as_deref(), &c.column) {
                Some(i) => {
                    if !idx.contains(&i) {
                        idx.push(i);
                    }
                }
                None => return Ok(None),
            }
        }
        Ok(Some(idx))
    }

    /// Mirror of [`subtree_has_free_refs`](Self::subtree_has_free_refs)
    /// that *collects* the free references instead of testing for their
    /// presence.
    fn collect_block_free_refs(
        &self,
        q: &QueryBlock,
        scopes: &mut Vec<Schema>,
        out: &mut Vec<ColumnRef>,
    ) -> Result<()> {
        let mut local = Schema::default();
        for tref in &q.from {
            let file = self
                .tables
                .get_table(&tref.table)
                .ok_or_else(|| EngineError::UnknownTable(tref.table.clone()))?;
            local = local.join(&file.schema().requalify(tref.effective_name()));
        }
        scopes.push(local);
        for c in level_column_refs(q) {
            let bound = scopes
                .iter()
                .any(|s| s.try_resolve(c.table.as_deref(), &c.column).is_some());
            if !bound {
                out.push(c.clone());
            }
        }
        for sub in subquery_children(q) {
            self.collect_block_free_refs(sub, scopes, out)?;
        }
        scopes.pop();
        Ok(())
    }

    // ------------------------------------------------------------- blocks

    /// Resolve (or recall) a block's FROM files and scope schema.
    fn block_info(&self, q: &QueryBlock) -> Result<Arc<BlockInfo>> {
        let key = q as *const QueryBlock as usize;
        if let Some(info) = lock(&self.shared.blocks).get(&key) {
            return Ok(Arc::clone(info));
        }
        let mut files: Vec<HeapFile> = Vec::new();
        let mut scope_schema = Schema::default();
        let mut seen = HashSet::new();
        for tref in &q.from {
            let file = self
                .tables
                .get_table(&tref.table)
                .ok_or_else(|| EngineError::UnknownTable(tref.table.clone()))?;
            let name = tref.effective_name();
            if !seen.insert(name.to_string()) {
                return Err(EngineError::Unsupported(format!(
                    "duplicate table name/alias in FROM: {name}"
                )));
            }
            let qualified = file.schema().requalify(name);
            scope_schema = scope_schema.join(&qualified);
            files.push(file.with_schema(qualified));
        }
        let info = Arc::new(BlockInfo { files, schema: scope_schema });
        lock(&self.shared.blocks).insert(key, Arc::clone(&info));
        Ok(info)
    }

    fn eval_block(&self, q: &QueryBlock, env: &Env<'_>) -> Result<Relation> {
        let info = self.block_info(q)?;

        // Cross-query result cache: fully-simple blocks only. Such a block
        // reads exactly one full scan of its FROM file regardless of
        // predicate outcomes, so a hit can recharge the identical read
        // sequence and return the stored result — counted I/O and the
        // answer are byte-identical with re-evaluation. The probe is
        // `None` (and evaluation proceeds untouched) when no cache is
        // attached, the block doesn't normalize, the provider tracks no
        // generation for the table, or a free reference fails to resolve.
        let probe = self.xq_probe(q, &info, env);
        if let Some(p) = &probe {
            if let Some(rel) =
                p.cache.find_block(&p.sig.text, &p.binding, &p.sig.table, p.generation, p.epoch)
            {
                self.shared.xq_hits.fetch_add(1, Ordering::Relaxed);
                for &pid in info.files[0].page_ids() {
                    let _ = self.storage.read_page(pid);
                }
                return Ok(rel.rel.clone());
            }
            self.shared.xq_misses.fetch_add(1, Ordering::Relaxed);
        }

        // Partition top-level conjuncts: simple predicates first.
        let conjuncts: Vec<&Predicate> = match &q.where_clause {
            Some(p) => p.conjuncts(),
            None => Vec::new(),
        };
        let (simple, nested): (Vec<&Predicate>, Vec<&Predicate>) = conjuncts
            .into_iter()
            .partition(|p| !p.contains_subquery());

        let rel = 'eval: {
            if self.vectorized {
                if let Some(rel) = self.try_eval_block_vec(q, env, &info, &simple, &nested)? {
                    break 'eval rel;
                }
            }
            self.eval_block_rows(q, env, &info, &simple, &nested)?
        };

        // Publish only successful evaluations, so an entry can never mask
        // an error a re-evaluation would raise.
        if let Some(p) = probe {
            p.cache.publish_block(BlockEntry {
                signature: p.sig.text.clone(),
                binding: p.binding,
                table: p.sig.table.clone(),
                generation: p.generation,
                epoch: p.epoch,
                rel: rel.clone(),
            });
        }
        Ok(rel)
    }

    /// The row-at-a-time block body: nested-iteration enumeration of the
    /// FROM product, then the SELECT phase.
    fn eval_block_rows(
        &self,
        q: &QueryBlock,
        env: &Env<'_>,
        info: &Arc<BlockInfo>,
        simple: &[&Predicate],
        nested: &[&Predicate],
    ) -> Result<Relation> {
        let scope_schema = &info.schema;
        let mut survivors: Vec<Tuple> = Vec::new();
        self.enumerate(&info.files, 0, Tuple::default(), &mut |binding| {
            let here = env.child(scope_schema, &binding);
            for p in simple {
                if self.eval_pred(p, &here)? != Some(true) {
                    return Ok(());
                }
            }
            for p in nested {
                if self.eval_pred(p, &here)? != Some(true) {
                    return Ok(());
                }
            }
            drop(here);
            survivors.push(binding);
            Ok(())
        })?;
        self.eval_select(q, scope_schema, survivors, env)
    }

    /// Recall (or derive) the block's normalized signature, then bind its
    /// free references against the current environment. Any failure —
    /// no attached cache, non-simple block, generation-less provider,
    /// unresolvable free reference — declines caching for this call.
    fn xq_probe(&self, q: &QueryBlock, info: &Arc<BlockInfo>, env: &Env<'_>) -> Option<XqProbe> {
        let cache = self.query_cache.as_ref()?;
        let sig = self.block_signature(q, info)?;
        let generation = self.tables.table_generation(&sig.table)?;
        let mut vals = Vec::with_capacity(sig.free.len());
        for c in &sig.free {
            vals.push(env.lookup(c).ok()?);
        }
        Some(XqProbe {
            cache: Arc::clone(cache),
            sig,
            binding: Tuple::new(vals),
            generation,
            epoch: self.tables.cache_epoch(),
        })
    }

    /// Per-query memo of [`normalized_block_signature`] over this block,
    /// classifying references against the block's own scope schema
    /// (resolvable = local, ambiguous = bail, unknown = free).
    fn block_signature(&self, q: &QueryBlock, info: &Arc<BlockInfo>) -> Option<Arc<BlockSig>> {
        let key = q as *const QueryBlock as usize;
        if let Some(s) = lock(&self.shared.signatures).get(&key) {
            return s.clone();
        }
        let schema = &info.schema;
        let classify = |c: &ColumnRef| match schema.resolve(c.table.as_deref(), &c.column) {
            Ok(_) => Some(true),
            Err(nsql_types::TypeError::AmbiguousColumn(_)) => None,
            Err(_) => Some(false),
        };
        let sig = normalized_block_signature(q, &classify).map(|(text, free)| {
            Arc::new(BlockSig { text, free, table: q.from[0].table.to_ascii_uppercase() })
        });
        lock(&self.shared.signatures).insert(key, sig.clone());
        sig
    }

    // --------------------------------------------------- vectorized path

    /// Recall (or compile) the block's simple conjuncts as a predicate
    /// [`Template`], keyed by the block's memoized [`BlockInfo`] address.
    /// `None` means the predicates declined compilation — e.g. a locally
    /// ambiguous reference, whose error the row path raises lazily.
    fn template_for(&self, info: &Arc<BlockInfo>, simple: &[&Predicate]) -> Option<Arc<Template>> {
        let key = Arc::as_ptr(info) as usize;
        if let Some(t) = lock(&self.shared.templates).get(&key) {
            return t.clone();
        }
        let conj = Predicate::And(simple.iter().map(|p| (*p).clone()).collect());
        let t = Template::compile(&info.schema, &conj).map(Arc::new);
        lock(&self.shared.templates).insert(key, t.clone());
        t
    }

    /// Row→column conversion for `page`, cached per page id (see
    /// [`IterShared::batches`]).
    fn batch_for(&self, pid: PageId, page: &nsql_storage::Page) -> Arc<Batch> {
        if let Some(b) = lock(&self.shared.batches).get(&pid) {
            return Arc::clone(b);
        }
        let b = Arc::new(Batch::from_tuples(page.tuples()));
        lock(&self.shared.batches).insert(pid, Arc::clone(&b));
        b
    }

    /// Vectorized evaluation of a block whose FROM clause is a single
    /// file. Returns `Ok(None)` to decline — more than one FROM file, the
    /// simple conjuncts don't compile, or an outer reference fails to
    /// resolve eagerly (the row path may hide such an error behind
    /// short-circuiting, so declining keeps error behaviour canonical).
    fn try_eval_block_vec(
        &self,
        q: &QueryBlock,
        env: &Env<'_>,
        info: &Arc<BlockInfo>,
        simple: &[&Predicate],
        nested: &[&Predicate],
    ) -> Result<Option<Relation>> {
        if info.files.len() != 1 {
            return Ok(None);
        }
        let Some(tpl) = self.template_for(info, simple) else {
            return Ok(None);
        };
        let mut outer_vals = Vec::with_capacity(tpl.outer_refs.len());
        for c in &tpl.outer_refs {
            match env.lookup(c) {
                Ok(v) => outer_vals.push(v),
                Err(_) => return Ok(None),
            }
        }

        // Fully-simple blocks depend only on (file contents, outer
        // values): SELECT items must resolve locally (output_schema
        // errors otherwise, and errors are never memoized), so the memo
        // key below captures everything the result can depend on.
        let memo_key = nested
            .is_empty()
            .then(|| (Arc::as_ptr(info) as usize, Tuple::new(outer_vals.clone())));
        if let Some(key) = &memo_key {
            if let Some(rel) = lock(&self.shared.results).map.get(key).cloned() {
                // Charge the same page reads a re-evaluation would issue.
                for &pid in info.files[0].page_ids() {
                    let _ = self.storage.read_page(pid);
                }
                return Ok(Some((*rel).clone()));
            }
        }

        let vp = tpl.instantiate(&outer_vals);
        let survivors =
            self.filter_pages_vec(&vp, info, info.files[0].page_ids(), nested, env)?;
        let rel = self.eval_select(q, &info.schema, survivors, env)?;
        if let Some(key) = memo_key {
            let size = approx_relation_bytes(&rel);
            let mut memo = lock(&self.shared.results);
            if memo.bytes + size <= self.memo_budget {
                memo.map.insert(key, Arc::new(rel.clone()));
                memo.bytes += size;
            }
        }
        Ok(Some(rel))
    }

    /// The vectorized binding loop: batch each page, evaluate the compiled
    /// simple conjuncts over all lanes at once, then walk the lanes *in
    /// row order* — an error lane stops exactly where the row path would
    /// (after earlier bindings' nested-conjunct I/O, before later pages),
    /// and each surviving lane runs the nested conjuncts row-wise.
    fn filter_pages_vec(
        &self,
        vp: &VPred,
        info: &BlockInfo,
        pids: &[PageId],
        nested: &[&Predicate],
        env: &Env<'_>,
    ) -> Result<Vec<Tuple>> {
        let scope_schema = &info.schema;
        let op = self.obs.as_ref().and_then(|o| o.current());
        if let Some(op) = &op {
            op.vectorized.store(1, std::sync::atomic::Ordering::Relaxed);
        }
        let mut survivors: Vec<Tuple> = Vec::new();
        for &pid in pids {
            let page = self.storage.read_page(pid);
            let batch = self.batch_for(pid, &page);
            if let Some(op) = &op {
                op.batches.add(0, 1);
            }
            let sel: Vec<u32> = (0..batch.len() as u32).collect();
            let lanes = vec_exec::eval_pred(vp, &batch, &sel);
            'lanes: for (pos, lane) in lanes.into_iter().enumerate() {
                match lane {
                    Lane3::Err(e) => return Err(e),
                    Lane3::T => {
                        let binding = Tuple::default().join(&page.tuples()[pos]);
                        if !nested.is_empty() {
                            let here = env.child(scope_schema, &binding);
                            for p in nested {
                                if self.eval_pred(p, &here)? != Some(true) {
                                    continue 'lanes;
                                }
                            }
                        }
                        survivors.push(binding);
                    }
                    Lane3::F | Lane3::U => {}
                }
            }
        }
        Ok(survivors)
    }

    /// Depth-first enumeration of the FROM product: rescans inner files per
    /// outer tuple, exactly like System R's nested iteration. Candidate
    /// bindings are joined directly off the buffered page (no intermediate
    /// per-tuple clone).
    fn enumerate(
        &self,
        files: &[HeapFile],
        depth: usize,
        prefix: Tuple,
        visit: &mut dyn FnMut(Tuple) -> Result<()>,
    ) -> Result<()> {
        if depth == files.len() {
            return visit(prefix);
        }
        for joined in files[depth].scan_with(&self.storage, |t| Some(prefix.join(t))) {
            self.enumerate(files, depth + 1, joined, visit)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------- select

    fn eval_select(
        &self,
        q: &QueryBlock,
        scope_schema: &Schema,
        survivors: Vec<Tuple>,
        env: &Env<'_>,
    ) -> Result<Relation> {
        let grouped = !q.group_by.is_empty();
        let has_agg = q.has_aggregate_select();
        let out_schema = self.output_schema(q, scope_schema)?;

        let mut rows: Vec<Tuple> = if grouped {
            self.eval_grouped(q, scope_schema, &survivors, env)?
        } else if has_agg {
            // Global aggregate: one row, even over zero survivors.
            let members: Vec<&Tuple> = survivors.iter().collect();
            vec![self.eval_aggregate_row(q, scope_schema, &members, env)?]
        } else {
            let mut rows = Vec::with_capacity(survivors.len());
            for s in &survivors {
                let here = env.child(scope_schema, s);
                let mut vals = Vec::with_capacity(q.select.len());
                for item in &q.select {
                    vals.push(self.eval_scalar(&item.expr, &here)?);
                }
                rows.push(Tuple::new(vals));
            }
            rows
        };

        if q.distinct {
            rows.sort_by(Tuple::total_cmp);
            rows.dedup();
        }
        if !q.order_by.is_empty() {
            let mut keys = Vec::new();
            for k in &q.order_by {
                let idx = resolve_output_column(&out_schema, q, &k.column)?;
                keys.push((idx, k.dir));
            }
            rows.sort_by(|a, b| {
                for &(i, dir) in &keys {
                    let o = a.get(i).total_cmp(b.get(i));
                    let o = if dir == SortDir::Desc { o.reverse() } else { o };
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        Relation::new(out_schema, rows).map_err(EngineError::from)
    }

    fn eval_grouped(
        &self,
        q: &QueryBlock,
        scope_schema: &Schema,
        survivors: &[Tuple],
        env: &Env<'_>,
    ) -> Result<Vec<Tuple>> {
        // Validate select items: group columns or aggregates only.
        let group_indices: Vec<usize> = q
            .group_by
            .iter()
            .map(|c| scope_schema.resolve(c.table.as_deref(), &c.column))
            .collect::<std::result::Result<_, _>>()?;
        let mut groups: Vec<(Tuple, Vec<&Tuple>)> = Vec::new();
        let mut index: FxHashMap<Tuple, usize> = FxHashMap::default();
        for s in survivors {
            let key = s.project(&group_indices);
            match index.get(&key) {
                Some(&i) => groups[i].1.push(s),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![s]));
                }
            }
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (_, members) in &groups {
            let mut vals = Vec::with_capacity(q.select.len());
            for item in &q.select {
                match &item.expr {
                    ScalarExpr::Aggregate(func, arg) => {
                        vals.push(self.aggregate_over(*func, arg, members, scope_schema, env)?)
                    }
                    ScalarExpr::Column(c) => {
                        // Must be (functionally determined by) a group key.
                        let idx = scope_schema.resolve(c.table.as_deref(), &c.column)?;
                        if !group_indices.contains(&idx) {
                            return Err(EngineError::Unsupported(format!(
                                "column {c} in SELECT is not in GROUP BY"
                            )));
                        }
                        vals.push(members[0].get(idx).clone());
                    }
                    ScalarExpr::Literal(v) => vals.push(v.clone()),
                }
            }
            rows.push(Tuple::new(vals));
        }
        Ok(rows)
    }

    fn eval_aggregate_row(
        &self,
        q: &QueryBlock,
        scope_schema: &Schema,
        survivors: &[&Tuple],
        env: &Env<'_>,
    ) -> Result<Tuple> {
        let mut vals = Vec::with_capacity(q.select.len());
        for item in &q.select {
            match &item.expr {
                ScalarExpr::Aggregate(func, arg) => {
                    vals.push(self.aggregate_over(*func, arg, survivors, scope_schema, env)?)
                }
                ScalarExpr::Literal(v) => vals.push(v.clone()),
                ScalarExpr::Column(c) => {
                    return Err(EngineError::Unsupported(format!(
                        "bare column {c} in aggregate SELECT without GROUP BY"
                    )))
                }
            }
        }
        Ok(Tuple::new(vals))
    }

    fn aggregate_over(
        &self,
        func: AggFunc,
        arg: &AggArg,
        members: &[&Tuple],
        scope_schema: &Schema,
        env: &Env<'_>,
    ) -> Result<Value> {
        let mut state = AggState::new(func);
        match arg {
            AggArg::Star => {
                for _ in members {
                    state.accumulate_row();
                }
            }
            AggArg::Column(c) => {
                for m in members {
                    let here = env.child(scope_schema, m);
                    let v = here.lookup(c)?;
                    state.accumulate(&v)?;
                }
            }
        }
        Ok(state.finish())
    }

    // --------------------------------------------------------- predicates

    fn eval_pred(&self, p: &Predicate, env: &Env<'_>) -> Result<Option<bool>> {
        match p {
            Predicate::And(ps) => {
                let mut unknown = false;
                for q in ps {
                    match self.eval_pred(q, env)? {
                        Some(false) => return Ok(Some(false)),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                Ok(if unknown { None } else { Some(true) })
            }
            Predicate::Or(ps) => {
                let mut unknown = false;
                for q in ps {
                    match self.eval_pred(q, env)? {
                        Some(true) => return Ok(Some(true)),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                Ok(if unknown { None } else { Some(false) })
            }
            Predicate::Not(q) => Ok(not3(self.eval_pred(q, env)?)),
            Predicate::Compare { left, op, right } => {
                let l = self.eval_operand(left, env)?;
                let r = self.eval_operand(right, env)?;
                compare_values(&l, *op, &r)
            }
            Predicate::In { operand, negated, rhs } => {
                let v = self.eval_operand(operand, env)?;
                let raw = match rhs {
                    InRhs::List(list) => crate::pred::in_list(&v, list)?,
                    InRhs::Subquery(q) => self.eval_membership(&v, q, env)?,
                };
                Ok(if *negated { not3(raw) } else { raw })
            }
            Predicate::Exists { negated, query } => {
                let nonempty = !self.eval_inner_rows(query, env)?.is_empty();
                Ok(Some(if *negated { !nonempty } else { nonempty }))
            }
            Predicate::Quantified { left, op, quantifier, query } => {
                let v = self.eval_operand(left, env)?;
                let rows = self.eval_inner_rows(query, env)?;
                self.eval_quantified(&v, *op, *quantifier, &rows)
            }
            Predicate::IsNull { operand, negated } => {
                let v = self.eval_operand(operand, env)?;
                Ok(Some(if *negated { !v.is_null() } else { v.is_null() }))
            }
        }
    }

    fn eval_operand(&self, o: &Operand, env: &Env<'_>) -> Result<Value> {
        match o {
            Operand::Column(c) => env.lookup(c),
            Operand::Literal(v) => Ok(v.clone()),
            Operand::Subquery(q) => self.eval_scalar_subquery(q, env),
        }
    }

    fn eval_scalar(&self, e: &ScalarExpr, env: &Env<'_>) -> Result<Value> {
        match e {
            ScalarExpr::Column(c) => env.lookup(c),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Aggregate(..) => Err(EngineError::Internal(
                "aggregate reached scalar evaluation".into(),
            )),
        }
    }

    /// Scalar subquery: at most one row, one column; empty ⇒ NULL.
    fn eval_scalar_subquery(&self, q: &QueryBlock, env: &Env<'_>) -> Result<Value> {
        if !self.is_correlated(q)? {
            let key = q as *const QueryBlock as usize;
            // In a trace view this marks where serial evaluation would
            // (first) evaluate the block; replay splices the captured
            // evaluation trace at the first marker. No-op when counting.
            self.storage.trace_marker(key);
            if let Some(Cached::Scalar(v)) = self.cache().get(&key) {
                return Ok(v.clone());
            }
            let v = self.scalar_from_relation(self.eval_block(q, &Env::default())?)?;
            self.cache().insert(key, Cached::Scalar(v.clone()));
            return Ok(v);
        }
        let rel = self.eval_block(q, env)?;
        self.scalar_from_relation(rel)
    }

    fn scalar_from_relation(&self, rel: Relation) -> Result<Value> {
        match rel.len() {
            0 => Ok(Value::Null),
            1 => Ok(rel.tuples()[0].get(0).clone()),
            n => Err(EngineError::ScalarSubqueryCardinality(n)),
        }
    }

    /// `v IN (subquery)` with System R's materialize-once strategy for
    /// uncorrelated inners: the list is stored as a temporary file and
    /// re-scanned per membership test.
    fn eval_membership(&self, v: &Value, q: &QueryBlock, env: &Env<'_>) -> Result<Option<bool>> {
        if !self.is_correlated(q)? {
            let key = q as *const QueryBlock as usize;
            self.storage.trace_marker(key);
            if !self.cache().contains_key(&key) {
                let rel = self.eval_block(q, &Env::default())?;
                let file = self.storage.store_relation(&rel);
                self.cache().insert(key, Cached::List(file));
            }
            // Clone the (page-id-list) handle out so concurrent workers
            // don't hold the cache lock across a file scan.
            let Some(Cached::List(file)) = self.cache().get(&key).cloned() else {
                return Err(EngineError::Internal("membership cache corrupted".into()));
            };
            let file = &file;
            // Scan the stored list per test (bounded memory, real I/O).
            // Tuples are compared in place on their buffered pages; the scan
            // stops at the first decisive match, reading exactly the pages
            // the old clone-per-tuple loop read.
            let mut unknown = false;
            let mut found = false;
            let mut err = None;
            file.scan_with(&self.storage, |t| match v.sql_eq(t.get(0)) {
                Ok(Some(true)) => {
                    found = true;
                    Some(Tuple::new(Vec::new())) // sentinel: stop scanning
                }
                Ok(None) => {
                    unknown = true;
                    None
                }
                Ok(Some(false)) => None,
                Err(e) => {
                    err = Some(e);
                    Some(Tuple::new(Vec::new()))
                }
            })
            .next();
            if let Some(e) = err {
                return Err(e.into());
            }
            if found {
                return Ok(Some(true));
            }
            return Ok(if unknown { None } else { Some(false) });
        }
        let rows = self.eval_block(q, env)?;
        let list: Vec<Value> = rows.tuples().iter().map(|t| t.get(0).clone()).collect();
        crate::pred::in_list(v, &list)
    }

    /// Rows of an inner block (for EXISTS / quantified), with caching for
    /// uncorrelated blocks.
    fn eval_inner_rows(&self, q: &QueryBlock, env: &Env<'_>) -> Result<Vec<Value>> {
        if !self.is_correlated(q)? {
            let key = q as *const QueryBlock as usize;
            self.storage.trace_marker(key);
            if !self.cache().contains_key(&key) {
                let rel = self.eval_block(q, &Env::default())?;
                let file = self.storage.store_relation(&rel);
                self.cache().insert(key, Cached::List(file));
            }
            let Some(Cached::List(file)) = self.cache().get(&key).cloned() else {
                return Err(EngineError::Internal("rows cache corrupted".into()));
            };
            let mut out = Vec::with_capacity(file.tuple_count());
            file.try_for_each(&self.storage, |t| -> Result<()> {
                out.push(t.get(0).clone());
                Ok(())
            })?;
            return Ok(out);
        }
        let rel = self.eval_block(q, env)?;
        Ok(rel.tuples().iter().map(|t| t.get(0).clone()).collect())
    }

    /// SQL quantified-comparison semantics:
    /// `ANY`: TRUE if any comparison is TRUE; else UNKNOWN if any UNKNOWN;
    /// else FALSE (FALSE over the empty set).
    /// `ALL`: FALSE if any comparison is FALSE; else UNKNOWN if any UNKNOWN;
    /// else TRUE (TRUE over the empty set).
    fn eval_quantified(
        &self,
        v: &Value,
        op: CompareOp,
        quant: Quantifier,
        rows: &[Value],
    ) -> Result<Option<bool>> {
        let mut unknown = false;
        for r in rows {
            match compare_values(v, op, r)? {
                Some(true) if quant == Quantifier::Any => return Ok(Some(true)),
                Some(false) if quant == Quantifier::All => return Ok(Some(false)),
                None => unknown = true,
                _ => {}
            }
        }
        Ok(if unknown {
            None
        } else {
            Some(quant == Quantifier::All)
        })
    }

    // -------------------------------------------------------- correlation

    /// Whether any column reference in `q`'s subtree fails to resolve
    /// within the subtree's own scopes (i.e. the block depends on enclosing
    /// bindings). Memoized per query — correlation is a static property of
    /// the AST, but this test runs once per outer binding.
    fn is_correlated(&self, q: &QueryBlock) -> Result<bool> {
        let key = q as *const QueryBlock as usize;
        if let Some(&v) = lock(&self.shared.correlated).get(&key) {
            return Ok(v);
        }
        let mut scopes: Vec<Schema> = Vec::new();
        let v = self.subtree_has_free_refs(q, &mut scopes)?;
        lock(&self.shared.correlated).insert(key, v);
        Ok(v)
    }

    fn subtree_has_free_refs(&self, q: &QueryBlock, scopes: &mut Vec<Schema>) -> Result<bool> {
        let mut local = Schema::default();
        for tref in &q.from {
            let file = self
                .tables
                .get_table(&tref.table)
                .ok_or_else(|| EngineError::UnknownTable(tref.table.clone()))?;
            local = local.join(&file.schema().requalify(tref.effective_name()));
        }
        scopes.push(local);
        let mut free = false;
        for c in level_column_refs(q) {
            let bound = scopes
                .iter()
                .any(|s| s.try_resolve(c.table.as_deref(), &c.column).is_some());
            if !bound {
                free = true;
                break;
            }
        }
        if !free {
            for sub in subquery_children(q) {
                if self.subtree_has_free_refs(sub, scopes)? {
                    free = true;
                    break;
                }
            }
        }
        scopes.pop();
        Ok(free)
    }

    // ------------------------------------------------------- output schema

    fn output_schema(&self, q: &QueryBlock, scope_schema: &Schema) -> Result<Schema> {
        let mut cols = Vec::with_capacity(q.select.len());
        for item in &q.select {
            let (name, ty) = match &item.expr {
                ScalarExpr::Column(c) => {
                    let idx = scope_schema.resolve(c.table.as_deref(), &c.column)?;
                    let col = &scope_schema.columns()[idx];
                    (col.name.clone(), col.ty)
                }
                ScalarExpr::Literal(v) => {
                    ("LITERAL".to_string(), v.column_type().unwrap_or(ColumnType::Int))
                }
                ScalarExpr::Aggregate(f, arg) => {
                    let ty = match (f, arg) {
                        (AggFunc::Count, _) => ColumnType::Int,
                        (AggFunc::Avg, _) => ColumnType::Float,
                        (_, AggArg::Column(c)) => {
                            let idx = scope_schema.resolve(c.table.as_deref(), &c.column)?;
                            scope_schema.columns()[idx].ty
                        }
                        (_, AggArg::Star) => ColumnType::Int,
                    };
                    (f.name().to_string(), ty)
                }
            };
            let name = item.alias.clone().unwrap_or(name);
            cols.push(Column::new(name, ty));
        }
        Ok(Schema::new(cols))
    }
}

/// Direct subquery children of a block's WHERE clause.
pub fn subquery_children(q: &QueryBlock) -> Vec<&QueryBlock> {
    let mut out = Vec::new();
    if let Some(p) = &q.where_clause {
        collect_subqueries(p, &mut out);
    }
    out
}

fn collect_subqueries<'p>(p: &'p Predicate, out: &mut Vec<&'p QueryBlock>) {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                collect_subqueries(q, out);
            }
        }
        Predicate::Not(q) => collect_subqueries(q, out),
        Predicate::Compare { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Subquery(q) = o {
                    out.push(q);
                }
            }
        }
        Predicate::In { rhs: InRhs::Subquery(q), .. } => out.push(q),
        Predicate::In { .. } => {}
        Predicate::Exists { query, .. } => out.push(query),
        Predicate::Quantified { query, .. } => out.push(query),
        Predicate::IsNull { .. } => {}
    }
}

/// Every subquery block in `q`'s subtree paired with how its use site
/// consumes it, in postorder (children before parents) — the order
/// pre-materialization wants.
fn collect_cached_uses<'q>(q: &'q QueryBlock, out: &mut Vec<(&'q QueryBlock, UseKind)>) {
    if let Some(p) = &q.where_clause {
        collect_pred_uses(p, out);
    }
}

fn collect_pred_uses<'p>(p: &'p Predicate, out: &mut Vec<(&'p QueryBlock, UseKind)>) {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                collect_pred_uses(q, out);
            }
        }
        Predicate::Not(q) => collect_pred_uses(q, out),
        Predicate::Compare { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Subquery(q) = o {
                    collect_cached_uses(q, out);
                    out.push((q, UseKind::Scalar));
                }
            }
        }
        Predicate::In { rhs: InRhs::Subquery(q), .. } => {
            collect_cached_uses(q, out);
            out.push((q, UseKind::List));
        }
        Predicate::In { .. } => {}
        Predicate::Exists { query, .. } => {
            collect_cached_uses(query, out);
            out.push((query, UseKind::List));
        }
        Predicate::Quantified { query, .. } => {
            collect_cached_uses(query, out);
            out.push((query, UseKind::List));
        }
        Predicate::IsNull { .. } => {}
    }
}

fn resolve_output_column(
    out_schema: &Schema,
    q: &QueryBlock,
    c: &ColumnRef,
) -> Result<usize> {
    // ORDER BY resolves against the output columns (by alias or name).
    if let Some(i) = out_schema.try_resolve(None, &c.column) {
        return Ok(i);
    }
    // Fall back to positional match against select-list column refs.
    for (i, item) in q.select.iter().enumerate() {
        if let ScalarExpr::Column(sc) = &item.expr {
            if sc.column == c.column
                && (c.table.is_none() || sc.table == c.table)
            {
                return Ok(i);
            }
        }
    }
    Err(EngineError::Type(nsql_types::TypeError::UnknownColumn(c.to_string())))
}
