//! Morsel-parallel page mapping with serial-equivalent buffer behaviour.
//!
//! The paper's metric is counted page I/Os, so parallel operators must
//! reproduce the serial buffer-pool evolution exactly. The trick is the
//! **ordered-fetch cursor**: claiming a morsel and fetching its pages
//! through the buffer pool happen under one lock, so the global sequence
//! of buffer fetches is exactly the serial scan order (p0, p1, …) no
//! matter how workers interleave. CPU work on the fetched pages (predicate
//! evaluation, hashing, aggregation) runs outside the lock — that is where
//! the parallel speedup comes from. Per-morsel results land in an ordered
//! slot table, so concatenating them reproduces the serial output order
//! (and therefore identical output page packing and write counts).

use nsql_exec_par::{chunk_for, run_workers};
use nsql_obs::OpMetrics;
use nsql_storage::{Page, PageId, Storage};
use std::sync::{Arc, Mutex, PoisonError};

/// Largest number of pages fetched per morsel claim. Small enough that the
/// fetch critical section stays short, large enough to amortize claiming.
const MAX_MORSEL_PAGES: usize = 8;

/// Map `work` over `pages` in morsels on `threads` workers, returning the
/// per-morsel results in morsel (= page) order.
///
/// `work(morsel_index, pages)` must be a pure function of the fetched pages
/// (no storage access!) — all buffered I/O happens inside the cursor so the
/// buffer sees the serial access order.
///
/// When `op` is set, each claim bumps its per-worker morsel counter —
/// outside the cursor lock, on side-state relaxed atomics, so the fetch
/// order and I/O accounting are untouched.
pub(crate) fn par_map_pages<R, F>(
    storage: &Storage,
    pages: &[PageId],
    threads: usize,
    op: Option<&OpMetrics>,
    work: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &[Arc<Page>]) -> R + Sync,
{
    let chunk = chunk_for(pages.len(), threads, MAX_MORSEL_PAGES);
    let n_morsels = pages.len().div_ceil(chunk);
    let slots: Vec<Mutex<Option<R>>> = (0..n_morsels).map(|_| Mutex::new(None)).collect();
    let cursor = Mutex::new(0usize);
    run_workers(threads.min(n_morsels.max(1)), |w| loop {
        // Claim AND fetch under the cursor lock: buffer fetch order equals
        // the serial scan order.
        let (morsel, fetched) = {
            let mut next = cursor.lock().unwrap_or_else(PoisonError::into_inner);
            let start = *next;
            if start >= pages.len() {
                return;
            }
            let end = (start + chunk).min(pages.len());
            *next = end;
            let fetched: Vec<Arc<Page>> =
                pages[start..end].iter().map(|&id| storage.read_page(id)).collect();
            (start / chunk, fetched)
        };
        if let Some(op) = op {
            op.morsels.add(w, 1);
        }
        let r = work(morsel, &fetched);
        *slots[morsel].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every morsel below the cursor was claimed and finished")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType, Schema, Tuple, Value};

    #[test]
    fn parallel_page_map_matches_serial_buffer_trace() {
        let rows: Vec<Tuple> = (0..500).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let schema = Schema::new(vec![Column::new("A", ColumnType::Int)]);

        let mk = || {
            let st = Storage::new(4, 128);
            let f = nsql_storage::HeapFile::from_tuples(&st, schema.clone(), rows.clone());
            st.clear_buffer();
            st.reset_stats();
            (st, f)
        };

        // Serial reference: one buffered pass.
        let (serial, fs) = mk();
        let mut want_sums = Vec::new();
        for &id in fs.page_ids() {
            let p = serial.read_page(id);
            want_sums.push(
                p.tuples()
                    .iter()
                    .map(|t| match t.get(0) {
                        Value::Int(i) => *i,
                        _ => 0,
                    })
                    .sum::<i64>(),
            );
        }

        let (par, fp) = mk();
        let got = par_map_pages(&par, fp.page_ids(), 4, None, |_m, pages| {
            pages
                .iter()
                .flat_map(|p| p.tuples())
                .map(|t| match t.get(0) {
                    Value::Int(i) => *i,
                    _ => 0,
                })
                .sum::<i64>()
        });
        // Per-morsel sums regroup the per-page sums in order.
        let chunk = chunk_for(fp.page_ids().len(), 4, 8);
        let want: Vec<i64> = want_sums.chunks(chunk).map(|c| c.iter().sum()).collect();
        assert_eq!(got, want);
        assert_eq!(par.io_stats(), serial.io_stats(), "identical read totals");
        assert_eq!(par.buffer_stats(), serial.buffer_stats(), "identical hit/miss split");
    }
}
