//! Aggregate accumulators with System R SQL semantics.
//!
//! * `NULL` inputs are ignored by every function.
//! * `COUNT(col)` counts non-null values; `COUNT(*)` counts rows.
//! * Over the empty set, `COUNT` yields `0` and everything else yields
//!   `NULL` — the asymmetry at the heart of the paper's COUNT bug.
//! * `SUM`/`AVG` stay integral over integer inputs (`AVG` divides as float).

use crate::error::EngineError;
use crate::Result;
use nsql_sql::AggFunc;
use nsql_types::Value;

/// Accumulator for one aggregate.
#[derive(Debug, Clone)]
pub struct AggState {
    func: AggFunc,
    /// Count of accumulated (non-null, unless `COUNT(*)`) inputs.
    count: i64,
    /// Running integer sum (valid while `float_sum` is `None`).
    int_sum: i64,
    /// Running float sum once any float has been seen.
    float_sum: Option<f64>,
    /// Current extremum for MIN/MAX.
    extremum: Value,
}

impl AggState {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> AggState {
        AggState {
            func,
            count: 0,
            int_sum: 0,
            float_sum: None,
            extremum: Value::Null,
        }
    }

    /// Feed one input value. For `COUNT(*)` callers pass a non-null marker
    /// (use [`AggState::accumulate_row`]).
    pub fn accumulate(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match (v, self.float_sum) {
                (Value::Int(i), None) => self.int_sum += i,
                (Value::Int(i), Some(f)) => self.float_sum = Some(f + *i as f64),
                (Value::Float(x), None) => self.float_sum = Some(self.int_sum as f64 + x),
                (Value::Float(x), Some(f)) => self.float_sum = Some(f + x),
                _ => {
                    return Err(EngineError::Type(nsql_types::TypeError::BadOperand(
                        format!("{}({})", self.func.name(), v),
                    )))
                }
            },
            AggFunc::Max => {
                if self.extremum.is_null()
                    || v.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Greater)
                {
                    self.extremum = v.clone();
                }
            }
            AggFunc::Min => {
                if self.extremum.is_null()
                    || v.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Less)
                {
                    self.extremum = v.clone();
                }
            }
        }
        Ok(())
    }

    /// Feed one *row* for `COUNT(*)`.
    pub fn accumulate_row(&mut self) {
        self.count += 1;
    }

    /// Fold another accumulator over the same function into this one, as if
    /// `other`'s inputs had been accumulated here after this one's own.
    ///
    /// This is what parallel aggregation uses to join the two halves of a
    /// group split across a morsel boundary. Integer aggregates are exact;
    /// float `SUM`/`AVG` may differ from the serial fold in final ULPs
    /// (float addition is not associative) — only for boundary-split groups.
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        debug_assert_eq!(self.func, other.func, "merging mismatched aggregates");
        if other.count == 0 {
            return Ok(());
        }
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match (self.float_sum, other.float_sum) {
                (None, None) => self.int_sum += other.int_sum,
                _ => {
                    let a = self.float_sum.unwrap_or(self.int_sum as f64);
                    let b = other.float_sum.unwrap_or(other.int_sum as f64);
                    self.float_sum = Some(a + b);
                }
            },
            AggFunc::Max => {
                if self.extremum.is_null()
                    || other.extremum.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Greater)
                {
                    self.extremum = other.extremum.clone();
                }
            }
            AggFunc::Min => {
                if self.extremum.is_null()
                    || other.extremum.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Less)
                {
                    self.extremum = other.extremum.clone();
                }
            }
        }
        self.count += other.count;
        Ok(())
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        if self.count == 0 {
            return self.func.empty_value();
        }
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => match self.float_sum {
                Some(f) => Value::Float(f),
                None => Value::Int(self.int_sum),
            },
            AggFunc::Avg => {
                let total = self.float_sum.unwrap_or(self.int_sum as f64);
                Value::Float(total / self.count as f64)
            }
            AggFunc::Max | AggFunc::Min => self.extremum.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut s = AggState::new(func);
        for v in vals {
            s.accumulate(v).unwrap();
        }
        s.finish()
    }

    #[test]
    fn count_of_empty_is_zero_others_null() {
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Max, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    #[test]
    fn nulls_are_ignored() {
        let vals = [Value::Int(3), Value::Null, Value::Int(5)];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Sum, &vals), Value::Int(8));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(5));
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(3));
    }

    #[test]
    fn all_null_input_behaves_like_empty() {
        let vals = [Value::Null, Value::Null];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(0));
        assert_eq!(run(AggFunc::Max, &vals), Value::Null);
        assert_eq!(run(AggFunc::Sum, &vals), Value::Null);
    }

    #[test]
    fn count_star_counts_rows() {
        let mut s = AggState::new(AggFunc::Count);
        s.accumulate_row();
        s.accumulate_row();
        assert_eq!(s.finish(), Value::Int(2));
    }

    #[test]
    fn avg_divides_as_float() {
        let vals = [Value::Int(1), Value::Int(2)];
        assert_eq!(run(AggFunc::Avg, &vals), Value::Float(1.5));
    }

    #[test]
    fn sum_promotes_to_float_on_mixed_input() {
        let vals = [Value::Int(1), Value::Float(0.5)];
        assert_eq!(run(AggFunc::Sum, &vals), Value::Float(1.5));
        let vals = [Value::Float(0.5), Value::Int(1)];
        assert_eq!(run(AggFunc::Sum, &vals), Value::Float(1.5));
    }

    #[test]
    fn max_min_work_on_dates_and_strings() {
        let d1 = Value::date("7-3-79").unwrap();
        let d2 = Value::date("1-1-80").unwrap();
        assert_eq!(run(AggFunc::Max, &[d1, d2.clone()]), d2);
        assert_eq!(run(AggFunc::Min, &[Value::str("b"), Value::str("a")]), Value::str("a"));
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        // Splitting any input at any point and merging must match the
        // one-pass fold (exactly, for integer inputs).
        let vals: Vec<Value> = vec![
            Value::Int(5),
            Value::Null,
            Value::Int(-2),
            Value::Int(9),
            Value::Int(9),
            Value::Null,
            Value::Int(0),
        ];
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min] {
            for split in 0..=vals.len() {
                let mut a = AggState::new(func);
                for v in &vals[..split] {
                    a.accumulate(v).unwrap();
                }
                let mut b = AggState::new(func);
                for v in &vals[split..] {
                    b.accumulate(v).unwrap();
                }
                a.merge(&b).unwrap();
                assert_eq!(a.finish(), run(func, &vals), "{func:?} split at {split}");
            }
        }
    }

    #[test]
    fn merge_promotes_mixed_int_float_sums() {
        let mut a = AggState::new(AggFunc::Sum);
        a.accumulate(&Value::Int(1)).unwrap();
        let mut b = AggState::new(AggFunc::Sum);
        b.accumulate(&Value::Float(0.5)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Float(1.5));

        let mut c = AggState::new(AggFunc::Sum);
        c.accumulate(&Value::Float(2.5)).unwrap();
        let mut d = AggState::new(AggFunc::Sum);
        d.accumulate(&Value::Int(4)).unwrap();
        c.merge(&d).unwrap();
        assert_eq!(c.finish(), Value::Float(6.5));
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Max] {
            let mut a = AggState::new(func);
            a.accumulate(&Value::Int(3)).unwrap();
            let before = a.finish();
            a.merge(&AggState::new(func)).unwrap();
            assert_eq!(a.finish(), before, "{func:?}: merging empty changes nothing");

            let mut e = AggState::new(func);
            let mut b = AggState::new(func);
            b.accumulate(&Value::Int(3)).unwrap();
            e.merge(&b).unwrap();
            assert_eq!(e.finish(), b.finish(), "{func:?}: empty absorbs other");
        }
    }

    #[test]
    fn sum_of_string_errors() {
        let mut s = AggState::new(AggFunc::Sum);
        assert!(s.accumulate(&Value::str("x")).is_err());
    }
}
