//! Aggregate accumulators with System R SQL semantics.
//!
//! * `NULL` inputs are ignored by every function.
//! * `COUNT(col)` counts non-null values; `COUNT(*)` counts rows.
//! * Over the empty set, `COUNT` yields `0` and everything else yields
//!   `NULL` — the asymmetry at the heart of the paper's COUNT bug.
//! * `SUM`/`AVG` stay integral over integer inputs (`AVG` divides as float).
//! * Float `SUM`/`AVG` is the *correctly rounded* exact sum ([`ExactSum`]),
//!   so serial folds and parallel merges agree bit-for-bit at any split.

use crate::error::EngineError;
use crate::Result;
use nsql_sql::AggFunc;
use nsql_types::Value;

/// Exact float accumulator: a non-overlapping expansion of partial doubles
/// maintained with Knuth's two-sum error-free transform (Shewchuk's
/// grow-expansion, the algorithm behind CPython's `math.fsum`). The
/// partials together represent the *exact* real-number sum of everything
/// added, so [`ExactSum::value`] — the nearest double to that exact sum —
/// is independent of insertion order and of how the input was split across
/// accumulators before [`ExactSum::absorb`].
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    partials: Vec<f64>,
    /// Plain sum of non-finite inputs; ±∞/NaN dominate the result and
    /// combine associatively among themselves, so order still cannot matter.
    non_finite: Option<f64>,
}

impl ExactSum {
    /// Add one double exactly.
    pub fn add(&mut self, mut x: f64) {
        if !x.is_finite() {
            self.non_finite = Some(self.non_finite.unwrap_or(0.0) + x);
            return;
        }
        let mut i = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[i] = lo;
                i += 1;
            }
            x = hi;
        }
        self.partials.truncate(i);
        self.partials.push(x);
    }

    /// Add an i64 exactly, split into two halves that each convert to f64
    /// without rounding.
    pub fn add_i64(&mut self, v: i64) {
        let hi = (v >> 32) as f64 * 4_294_967_296.0; // exact: |v>>32| ≤ 2^31
        let lo = (v & 0xFFFF_FFFF) as f64; // exact: < 2^32
        self.add(hi);
        self.add(lo);
    }

    /// Fold another accumulator in. Because each side's partials are an
    /// exact representation of its inputs, the combined exact sum — and
    /// therefore [`ExactSum::value`] — equals the single-accumulator result
    /// no matter where the input was split.
    pub fn absorb(&mut self, other: &ExactSum) {
        if let Some(nf) = other.non_finite {
            self.non_finite = Some(self.non_finite.unwrap_or(0.0) + nf);
        }
        for &p in &other.partials {
            self.add(p);
        }
    }

    /// The correctly rounded double value of the exact sum, with the fsum
    /// half-ulp correction for exact round-to-even ties.
    pub fn value(&self) -> f64 {
        if let Some(nf) = self.non_finite {
            return nf + self.partials.iter().sum::<f64>();
        }
        let n = self.partials.len();
        if n == 0 {
            return 0.0;
        }
        let mut i = n - 1;
        let mut hi = self.partials[i];
        let mut lo = 0.0;
        while i > 0 {
            i -= 1;
            let x = hi;
            let y = self.partials[i];
            hi = x + y;
            lo = y - (hi - x);
            if lo != 0.0 {
                break;
            }
        }
        // If rounding (hi, lo) landed exactly halfway and the next partial
        // pulls further in lo's direction, round away from hi.
        if i > 0
            && ((lo < 0.0 && self.partials[i - 1] < 0.0)
                || (lo > 0.0 && self.partials[i - 1] > 0.0))
        {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

/// Accumulator for one aggregate.
#[derive(Debug, Clone)]
pub struct AggState {
    func: AggFunc,
    /// Count of accumulated (non-null, unless `COUNT(*)`) inputs.
    count: i64,
    /// Running integer sum, always exact (overflow is a typed error).
    int_sum: i64,
    /// Exact sum of the float inputs.
    floats: ExactSum,
    /// Whether any float input was seen (controls SUM's output type).
    saw_float: bool,
    /// Current extremum for MIN/MAX.
    extremum: Value,
}

impl AggState {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> AggState {
        AggState {
            func,
            count: 0,
            int_sum: 0,
            floats: ExactSum::default(),
            saw_float: false,
            extremum: Value::Null,
        }
    }

    /// Feed one input value. For `COUNT(*)` callers pass a non-null marker
    /// (use [`AggState::accumulate_row`]).
    pub fn accumulate(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.int_sum = self.int_sum.checked_add(*i).ok_or_else(|| {
                        EngineError::Overflow(format!("{} over i64", self.func.name()))
                    })?;
                }
                Value::Float(x) => {
                    self.saw_float = true;
                    self.floats.add(*x);
                }
                _ => {
                    return Err(EngineError::Type(nsql_types::TypeError::BadOperand(
                        format!("{}({})", self.func.name(), v),
                    )))
                }
            },
            AggFunc::Max => {
                if self.extremum.is_null()
                    || v.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Greater)
                {
                    self.extremum = v.clone();
                }
            }
            AggFunc::Min => {
                if self.extremum.is_null()
                    || v.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Less)
                {
                    self.extremum = v.clone();
                }
            }
        }
        Ok(())
    }

    /// Feed one *row* for `COUNT(*)`.
    pub fn accumulate_row(&mut self) {
        self.count += 1;
    }

    /// Typed fast path: exactly `accumulate(&Value::Int(i))` without
    /// building the `Value`. Callers have already skipped NULLs (a cleared
    /// validity bit on the vectorized path).
    pub fn accumulate_int(&mut self, i: i64) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                self.count += 1;
                Ok(())
            }
            AggFunc::Sum | AggFunc::Avg => {
                self.count += 1;
                self.int_sum = self.int_sum.checked_add(i).ok_or_else(|| {
                    EngineError::Overflow(format!("{} over i64", self.func.name()))
                })?;
                Ok(())
            }
            AggFunc::Max | AggFunc::Min => self.accumulate(&Value::Int(i)),
        }
    }

    /// Typed fast path: exactly `accumulate(&Value::Float(x))` without
    /// building the `Value`.
    pub fn accumulate_float(&mut self, x: f64) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                self.count += 1;
                Ok(())
            }
            AggFunc::Sum | AggFunc::Avg => {
                self.count += 1;
                self.saw_float = true;
                self.floats.add(x);
                Ok(())
            }
            AggFunc::Max | AggFunc::Min => self.accumulate(&Value::Float(x)),
        }
    }

    /// Fold another accumulator over the same function into this one, as if
    /// `other`'s inputs had been accumulated here after this one's own.
    ///
    /// This is what parallel aggregation uses to join the two halves of a
    /// group split across a morsel boundary. Every aggregate is exact:
    /// integer sums are checked i64 arithmetic, and float sums keep an
    /// [`ExactSum`] expansion, so the merged result is bit-identical to the
    /// serial fold wherever the boundary falls.
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        debug_assert_eq!(self.func, other.func, "merging mismatched aggregates");
        if other.count == 0 {
            return Ok(());
        }
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.int_sum = self.int_sum.checked_add(other.int_sum).ok_or_else(|| {
                    EngineError::Overflow(format!("{} over i64", self.func.name()))
                })?;
                self.floats.absorb(&other.floats);
                self.saw_float |= other.saw_float;
            }
            AggFunc::Max => {
                if self.extremum.is_null()
                    || other.extremum.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Greater)
                {
                    self.extremum = other.extremum.clone();
                }
            }
            AggFunc::Min => {
                if self.extremum.is_null()
                    || other.extremum.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Less)
                {
                    self.extremum = other.extremum.clone();
                }
            }
        }
        self.count += other.count;
        Ok(())
    }

    /// Correctly rounded total of the float partials plus the (exact)
    /// integer side.
    fn exact_total(&self) -> f64 {
        let mut s = self.floats.clone();
        s.add_i64(self.int_sum);
        s.value()
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        if self.count == 0 {
            return self.func.empty_value();
        }
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.saw_float {
                    Value::Float(self.exact_total())
                } else {
                    Value::Int(self.int_sum)
                }
            }
            AggFunc::Avg => {
                let total =
                    if self.saw_float { self.exact_total() } else { self.int_sum as f64 };
                Value::Float(total / self.count as f64)
            }
            AggFunc::Max | AggFunc::Min => self.extremum.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut s = AggState::new(func);
        for v in vals {
            s.accumulate(v).unwrap();
        }
        s.finish()
    }

    #[test]
    fn count_of_empty_is_zero_others_null() {
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Max, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    #[test]
    fn nulls_are_ignored() {
        let vals = [Value::Int(3), Value::Null, Value::Int(5)];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Sum, &vals), Value::Int(8));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(5));
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(3));
    }

    #[test]
    fn all_null_input_behaves_like_empty() {
        let vals = [Value::Null, Value::Null];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(0));
        assert_eq!(run(AggFunc::Max, &vals), Value::Null);
        assert_eq!(run(AggFunc::Sum, &vals), Value::Null);
    }

    #[test]
    fn count_star_counts_rows() {
        let mut s = AggState::new(AggFunc::Count);
        s.accumulate_row();
        s.accumulate_row();
        assert_eq!(s.finish(), Value::Int(2));
    }

    #[test]
    fn avg_divides_as_float() {
        let vals = [Value::Int(1), Value::Int(2)];
        assert_eq!(run(AggFunc::Avg, &vals), Value::Float(1.5));
    }

    #[test]
    fn sum_promotes_to_float_on_mixed_input() {
        let vals = [Value::Int(1), Value::Float(0.5)];
        assert_eq!(run(AggFunc::Sum, &vals), Value::Float(1.5));
        let vals = [Value::Float(0.5), Value::Int(1)];
        assert_eq!(run(AggFunc::Sum, &vals), Value::Float(1.5));
    }

    #[test]
    fn max_min_work_on_dates_and_strings() {
        let d1 = Value::date("7-3-79").unwrap();
        let d2 = Value::date("1-1-80").unwrap();
        assert_eq!(run(AggFunc::Max, &[d1, d2.clone()]), d2);
        assert_eq!(run(AggFunc::Min, &[Value::str("b"), Value::str("a")]), Value::str("a"));
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        // Splitting any input at any point and merging must match the
        // one-pass fold (exactly, for integer inputs).
        let vals: Vec<Value> = vec![
            Value::Int(5),
            Value::Null,
            Value::Int(-2),
            Value::Int(9),
            Value::Int(9),
            Value::Null,
            Value::Int(0),
        ];
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min] {
            for split in 0..=vals.len() {
                let mut a = AggState::new(func);
                for v in &vals[..split] {
                    a.accumulate(v).unwrap();
                }
                let mut b = AggState::new(func);
                for v in &vals[split..] {
                    b.accumulate(v).unwrap();
                }
                a.merge(&b).unwrap();
                assert_eq!(a.finish(), run(func, &vals), "{func:?} split at {split}");
            }
        }
    }

    #[test]
    fn merge_promotes_mixed_int_float_sums() {
        let mut a = AggState::new(AggFunc::Sum);
        a.accumulate(&Value::Int(1)).unwrap();
        let mut b = AggState::new(AggFunc::Sum);
        b.accumulate(&Value::Float(0.5)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Float(1.5));

        let mut c = AggState::new(AggFunc::Sum);
        c.accumulate(&Value::Float(2.5)).unwrap();
        let mut d = AggState::new(AggFunc::Sum);
        d.accumulate(&Value::Int(4)).unwrap();
        c.merge(&d).unwrap();
        assert_eq!(c.finish(), Value::Float(6.5));
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Max] {
            let mut a = AggState::new(func);
            a.accumulate(&Value::Int(3)).unwrap();
            let before = a.finish();
            a.merge(&AggState::new(func)).unwrap();
            assert_eq!(a.finish(), before, "{func:?}: merging empty changes nothing");

            let mut e = AggState::new(func);
            let mut b = AggState::new(func);
            b.accumulate(&Value::Int(3)).unwrap();
            e.merge(&b).unwrap();
            assert_eq!(e.finish(), b.finish(), "{func:?}: empty absorbs other");
        }
    }

    #[test]
    fn typed_accumulators_match_value_accumulation() {
        let ints = [3i64, -2, 9, 0, i64::MAX / 2];
        let floats = [0.1, 1e16, -0.30000000000000004, f64::NAN];
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min] {
            let mut typed = AggState::new(func);
            let mut boxed = AggState::new(func);
            for &i in &ints {
                typed.accumulate_int(i).unwrap();
                boxed.accumulate(&Value::Int(i)).unwrap();
            }
            assert_eq!(typed.finish(), boxed.finish(), "{func:?} ints");

            let mut typed = AggState::new(func);
            let mut boxed = AggState::new(func);
            for &x in &floats {
                typed.accumulate_float(x).unwrap();
                boxed.accumulate(&Value::Float(x)).unwrap();
            }
            let (t, b) = (typed.finish(), boxed.finish());
            match (&t, &b) {
                (Value::Float(a), Value::Float(c)) => {
                    assert_eq!(a.to_bits(), c.to_bits(), "{func:?} floats")
                }
                _ => assert_eq!(t, b, "{func:?} floats"),
            }
        }
        // Overflow surfaces identically.
        let mut s = AggState::new(AggFunc::Sum);
        s.accumulate_int(i64::MAX).unwrap();
        assert!(matches!(s.accumulate_int(1), Err(EngineError::Overflow(_))));
    }

    #[test]
    fn sum_of_string_errors() {
        let mut s = AggState::new(AggFunc::Sum);
        assert!(s.accumulate(&Value::str("x")).is_err());
    }

    #[test]
    fn int_sum_overflow_is_a_typed_error() {
        let mut s = AggState::new(AggFunc::Sum);
        s.accumulate(&Value::Int(i64::MAX)).unwrap();
        match s.accumulate(&Value::Int(1)) {
            Err(EngineError::Overflow(_)) => {}
            other => panic!("expected Overflow, got {other:?}"),
        }
        // … and the same through merge.
        let mut a = AggState::new(AggFunc::Sum);
        a.accumulate(&Value::Int(i64::MAX)).unwrap();
        let mut b = AggState::new(AggFunc::Sum);
        b.accumulate(&Value::Int(1)).unwrap();
        assert!(matches!(a.merge(&b), Err(EngineError::Overflow(_))));
    }

    /// Floats chosen so naive left-to-right and right-to-left summation give
    /// different doubles — the exact accumulator must not care.
    const TRICKY: [f64; 8] = [1e16, 0.1, -1e16, 0.1, 3.25, 1e-9, -0.30000000000000004, 2.5e-15];

    #[test]
    fn float_merge_is_bit_identical_at_every_split() {
        let vals: Vec<Value> = TRICKY.iter().copied().map(Value::Float).collect();
        for func in [AggFunc::Sum, AggFunc::Avg] {
            let serial = run(func, &vals);
            let Value::Float(serial) = serial else { panic!("float expected") };
            for split in 0..=vals.len() {
                let mut a = AggState::new(func);
                for v in &vals[..split] {
                    a.accumulate(v).unwrap();
                }
                let mut b = AggState::new(func);
                for v in &vals[split..] {
                    b.accumulate(v).unwrap();
                }
                a.merge(&b).unwrap();
                let Value::Float(merged) = a.finish() else { panic!("float expected") };
                assert_eq!(
                    merged.to_bits(),
                    serial.to_bits(),
                    "{func:?} split at {split}: {merged:?} != {serial:?}"
                );
            }
        }
    }

    #[test]
    fn mixed_int_float_merge_is_bit_identical_and_correctly_rounded() {
        let vals = [
            Value::Float(0.1),
            Value::Int(1_000_000_007),
            Value::Float(0.2),
            Value::Int(-3),
            Value::Float(-0.25),
        ];
        let Value::Float(serial) = run(AggFunc::Sum, &vals) else { panic!() };
        for split in 0..=vals.len() {
            let mut a = AggState::new(AggFunc::Sum);
            for v in &vals[..split] {
                a.accumulate(v).unwrap();
            }
            let mut b = AggState::new(AggFunc::Sum);
            for v in &vals[split..] {
                b.accumulate(v).unwrap();
            }
            a.merge(&b).unwrap();
            let Value::Float(merged) = a.finish() else { panic!() };
            assert_eq!(merged.to_bits(), serial.to_bits(), "split at {split}");
        }
        // Spot-check correct rounding: the exact sum of the inputs is
        // 1000000004 + (0.1 + 0.2 - 0.25 exactly), and the nearest double
        // to it is unique.
        let mut exact = ExactSum::default();
        for x in [0.1, 0.2, -0.25] {
            exact.add(x);
        }
        exact.add_i64(1_000_000_004);
        assert_eq!(serial.to_bits(), exact.value().to_bits());
    }

    #[test]
    fn exact_sum_handles_non_finite_inputs() {
        let mut s = ExactSum::default();
        s.add(f64::INFINITY);
        s.add(1.0);
        assert_eq!(s.value(), f64::INFINITY);
        let mut t = ExactSum::default();
        t.add(f64::NEG_INFINITY);
        s.absorb(&t);
        assert!(s.value().is_nan(), "∞ + -∞ is NaN regardless of split");
    }

    #[test]
    fn exact_sum_is_order_independent() {
        let mut fwd = ExactSum::default();
        for x in TRICKY {
            fwd.add(x);
        }
        let mut rev = ExactSum::default();
        for x in TRICKY.iter().rev() {
            rev.add(*x);
        }
        assert_eq!(fwd.value().to_bits(), rev.value().to_bits());
    }
}
