//! Compiled predicates with SQL three-valued logic.
//!
//! Evaluation returns `Option<bool>`: `Some(true)` / `Some(false)` /
//! `None` (*unknown*). `WHERE` keeps a row only when the predicate is
//! `Some(true)` — the rule that makes `MAX(∅) = NULL` drop rows in the
//! paper's Q5 example and that outer-join `NULL` padding interacts with.

use crate::error::EngineError;
use crate::expr::{CExpr, Row};
use crate::Result;
use nsql_sql::{CompareOp, InRhs, Operand, Predicate};
use nsql_types::{Schema, Tuple, Value};

/// Three-valued AND over an iterator of truth values.
pub fn and3(values: impl IntoIterator<Item = Option<bool>>) -> Option<bool> {
    let mut unknown = false;
    for v in values {
        match v {
            Some(false) => return Some(false),
            None => unknown = true,
            Some(true) => {}
        }
    }
    if unknown {
        None
    } else {
        Some(true)
    }
}

/// Three-valued OR over an iterator of truth values.
pub fn or3(values: impl IntoIterator<Item = Option<bool>>) -> Option<bool> {
    let mut unknown = false;
    for v in values {
        match v {
            Some(true) => return Some(true),
            None => unknown = true,
            Some(false) => {}
        }
    }
    if unknown {
        None
    } else {
        Some(false)
    }
}

/// Three-valued NOT.
pub fn not3(v: Option<bool>) -> Option<bool> {
    v.map(|b| !b)
}

/// A compiled predicate over a fixed tuple schema.
#[derive(Debug, Clone, PartialEq)]
pub enum CPred {
    /// Constant truth value (used for empty conjunctions).
    Const(Option<bool>),
    /// Conjunction.
    And(Vec<CPred>),
    /// Disjunction.
    Or(Vec<CPred>),
    /// Negation.
    Not(Box<CPred>),
    /// Scalar comparison.
    Cmp {
        /// Left side.
        left: CExpr,
        /// Operator.
        op: CompareOp,
        /// Right side.
        right: CExpr,
    },
    /// Membership in a literal list.
    InList {
        /// Tested expression.
        expr: CExpr,
        /// List of values.
        list: Vec<Value>,
        /// Negated?
        negated: bool,
    },
    /// NULL test.
    IsNull {
        /// Tested expression.
        expr: CExpr,
        /// `IS NOT NULL`?
        negated: bool,
    },
}

impl CPred {
    /// Evaluate under three-valued logic.
    pub fn eval(&self, tuple: &Tuple) -> Result<Option<bool>> {
        self.eval_row(tuple)
    }

    /// Evaluate against any [`Row`] — a tuple, or a join candidate viewed
    /// through [`crate::expr::Joined`] without concatenating.
    pub fn eval_row<R: Row>(&self, row: &R) -> Result<Option<bool>> {
        Ok(match self {
            CPred::Const(v) => *v,
            CPred::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval_row(row)? {
                        Some(false) => return Ok(Some(false)),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            CPred::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval_row(row)? {
                        Some(true) => return Ok(Some(true)),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            CPred::Not(p) => not3(p.eval_row(row)?),
            CPred::Cmp { left, op, right } => {
                compare_values(left.eval_row(row), *op, right.eval_row(row))?
            }
            CPred::InList { expr, list, negated } => {
                let v = in_list(expr.eval_row(row), list)?;
                if *negated {
                    not3(v)
                } else {
                    v
                }
            }
            CPred::IsNull { expr, negated } => {
                let isnull = expr.eval_row(row).is_null();
                Some(if *negated { !isnull } else { isnull })
            }
        })
    }

    /// True iff `eval` returns `Some(true)` — the WHERE-clause acceptance
    /// test.
    pub fn accepts(&self, tuple: &Tuple) -> Result<bool> {
        Ok(self.eval_row(tuple)? == Some(true))
    }

    /// [`accepts`](CPred::accepts) over any [`Row`].
    pub fn accepts_row<R: Row>(&self, row: &R) -> Result<bool> {
        Ok(self.eval_row(row)? == Some(true))
    }

    /// Compile an AST predicate against `schema`. Subqueries are rejected
    /// (see [`CExpr::compile_operand`]); `Exists`/`Quantified` never reach
    /// physical compilation.
    pub fn compile(schema: &Schema, p: &Predicate) -> Result<CPred> {
        Ok(match p {
            Predicate::And(ps) => CPred::And(
                ps.iter().map(|q| CPred::compile(schema, q)).collect::<Result<_>>()?,
            ),
            Predicate::Or(ps) => CPred::Or(
                ps.iter().map(|q| CPred::compile(schema, q)).collect::<Result<_>>()?,
            ),
            Predicate::Not(q) => CPred::Not(Box::new(CPred::compile(schema, q)?)),
            Predicate::Compare { left, op, right } => CPred::Cmp {
                left: CExpr::compile_operand(schema, left)?,
                op: *op,
                right: CExpr::compile_operand(schema, right)?,
            },
            Predicate::In { operand, negated, rhs: InRhs::List(list) } => CPred::InList {
                expr: CExpr::compile_operand(schema, operand)?,
                list: list.clone(),
                negated: *negated,
            },
            Predicate::In { rhs: InRhs::Subquery(_), .. } => {
                return Err(EngineError::Unsupported(
                    "IN subquery in physical predicate (transform it away first)".into(),
                ))
            }
            Predicate::Exists { .. } | Predicate::Quantified { .. } => {
                return Err(EngineError::Unsupported(
                    "EXISTS/quantified predicate in physical plan (rewrite it first)".into(),
                ))
            }
            Predicate::IsNull { operand, negated } => CPred::IsNull {
                expr: CExpr::compile_operand(schema, operand)?,
                negated: *negated,
            },
        })
    }

    /// A predicate that is always true.
    pub fn always_true() -> CPred {
        CPred::Const(Some(true))
    }
}

/// Compare under 3VL (`None` when either side is `NULL`).
pub fn compare_values(a: &Value, op: CompareOp, b: &Value) -> Result<Option<bool>> {
    Ok(a.sql_cmp(b)?.map(|o| op.eval(o)))
}

/// SQL `IN` over an in-memory list: `TRUE` if some element equals, else
/// `UNKNOWN` if any comparison was unknown (NULL involved), else `FALSE`.
pub fn in_list(v: &Value, list: &[Value]) -> Result<Option<bool>> {
    let mut unknown = false;
    for item in list {
        match v.sql_eq(item)? {
            Some(true) => return Ok(Some(true)),
            None => unknown = true,
            Some(false) => {}
        }
    }
    Ok(if unknown { None } else { Some(false) })
}

/// Check whether an AST operand is free of subqueries (usable physically).
pub fn operand_is_simple(o: &Operand) -> bool {
    !matches!(o, Operand::Subquery(_))
}

/// A *simple* predicate in the paper's sense: no nested query block at any
/// position. These are the predicates NEST-JA2 pushes into the projection /
/// restriction steps.
pub fn predicate_is_simple(p: &Predicate) -> bool {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => ps.iter().all(predicate_is_simple),
        Predicate::Not(q) => predicate_is_simple(q),
        Predicate::Compare { left, right, .. } => {
            operand_is_simple(left) && operand_is_simple(right)
        }
        Predicate::In { operand, rhs, .. } => {
            operand_is_simple(operand) && matches!(rhs, InRhs::List(_))
        }
        Predicate::Exists { .. } | Predicate::Quantified { .. } => false,
        Predicate::IsNull { operand, .. } => operand_is_simple(operand),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::parse_query;
    use nsql_types::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("T", "A", ColumnType::Int),
            Column::qualified("T", "B", ColumnType::Int),
        ])
    }

    fn compile(src_where: &str) -> CPred {
        let q = parse_query(&format!("SELECT A FROM T WHERE {src_where}")).unwrap();
        CPred::compile(&schema(), q.where_clause.as_ref().unwrap()).unwrap()
    }

    fn t(a: Option<i64>, b: Option<i64>) -> Tuple {
        Tuple::new(vec![
            a.map_or(Value::Null, Value::Int),
            b.map_or(Value::Null, Value::Int),
        ])
    }

    #[test]
    fn three_valued_and() {
        assert_eq!(and3([Some(true), Some(true)]), Some(true));
        assert_eq!(and3([Some(true), Some(false), None]), Some(false));
        assert_eq!(and3([Some(true), None]), None);
        assert_eq!(and3([]), Some(true));
    }

    #[test]
    fn three_valued_or() {
        assert_eq!(or3([Some(false), Some(true), None]), Some(true));
        assert_eq!(or3([Some(false), None]), None);
        assert_eq!(or3([Some(false)]), Some(false));
        assert_eq!(or3([]), Some(false));
    }

    #[test]
    fn comparison_with_null_is_unknown() {
        let p = compile("A = 1");
        assert_eq!(p.eval(&t(Some(1), None)).unwrap(), Some(true));
        assert_eq!(p.eval(&t(None, None)).unwrap(), None);
        assert!(!p.accepts(&t(None, None)).unwrap());
    }

    #[test]
    fn and_short_circuits_unknown_correctly() {
        // FALSE AND UNKNOWN = FALSE; TRUE AND UNKNOWN = UNKNOWN.
        let p = compile("A = 1 AND B = 2");
        assert_eq!(p.eval(&t(Some(0), None)).unwrap(), Some(false));
        assert_eq!(p.eval(&t(Some(1), None)).unwrap(), None);
    }

    #[test]
    fn not_of_unknown_is_unknown() {
        let p = compile("NOT (B = 2)");
        assert_eq!(p.eval(&t(Some(1), None)).unwrap(), None);
        assert_eq!(p.eval(&t(Some(1), Some(3))).unwrap(), Some(true));
    }

    #[test]
    fn in_list_semantics() {
        assert_eq!(in_list(&Value::Int(1), &[Value::Int(1), Value::Null]).unwrap(), Some(true));
        assert_eq!(in_list(&Value::Int(2), &[Value::Int(1), Value::Null]).unwrap(), None);
        assert_eq!(in_list(&Value::Int(2), &[Value::Int(1)]).unwrap(), Some(false));
        assert_eq!(in_list(&Value::Null, &[Value::Int(1)]).unwrap(), None);
        assert_eq!(in_list(&Value::Int(1), &[]).unwrap(), Some(false));
    }

    #[test]
    fn not_in_with_null_never_accepts() {
        let p = compile("A NOT IN (1, NULL)");
        assert_eq!(p.eval(&t(Some(2), None)).unwrap(), None);
        assert_eq!(p.eval(&t(Some(1), None)).unwrap(), Some(false));
    }

    #[test]
    fn is_null_is_two_valued() {
        let p = compile("B IS NULL");
        assert_eq!(p.eval(&t(Some(1), None)).unwrap(), Some(true));
        assert_eq!(p.eval(&t(Some(1), Some(2))).unwrap(), Some(false));
        let p = compile("B IS NOT NULL");
        assert_eq!(p.eval(&t(Some(1), None)).unwrap(), Some(false));
    }

    #[test]
    fn simple_predicate_detection() {
        let q = parse_query("SELECT A FROM T WHERE A = 1 AND B IN (1, 2)").unwrap();
        assert!(predicate_is_simple(q.where_clause.as_ref().unwrap()));
        let q = parse_query("SELECT A FROM T WHERE A IN (SELECT B FROM T)").unwrap();
        assert!(!predicate_is_simple(q.where_clause.as_ref().unwrap()));
        let q = parse_query("SELECT A FROM T WHERE A = (SELECT MAX(B) FROM T)").unwrap();
        assert!(!predicate_is_simple(q.where_clause.as_ref().unwrap()));
    }

    #[test]
    fn compile_rejects_subqueries() {
        let q = parse_query("SELECT A FROM T WHERE A IN (SELECT B FROM T)").unwrap();
        assert!(CPred::compile(&schema(), q.where_clause.as_ref().unwrap()).is_err());
        let q = parse_query("SELECT A FROM T WHERE EXISTS (SELECT B FROM T)").unwrap();
        assert!(CPred::compile(&schema(), q.where_clause.as_ref().unwrap()).is_err());
    }
}
