//! Nested-iteration semantics on the paper's own examples.
//!
//! These results are the ground truth every transformation is judged
//! against; the expected values below are copied from the paper's text.

use nsql_engine::fixtures::{
    duplicates_problem, int_column_sorted, kiessling_count_bug, non_equality_bug,
    suppliers_parts,
};
use nsql_engine::{NestedIter, TableProvider};
use nsql_sql::parse_query;
use nsql_types::{Relation, Value};

/// Kiessling's query Q2 — Section 5.1.
const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

/// Query Q5 — Section 5.3 (the `<` join predicate).
const Q5: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT MAX(QUAN) FROM SUPPLY \
     WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)";

fn run(fixture: &nsql_engine::fixtures::Fixture, sql: &str) -> Relation {
    let q = parse_query(sql).unwrap();
    NestedIter::new(&fixture.provider, fixture.storage.clone())
        .eval_query(&q)
        .unwrap()
}

#[test]
fn kiessling_q2_yields_10_and_8() {
    // "query Q2 will give the following result when evaluated using nested
    //  iteration: PARTS.PNUM ∈ {10, 8}" [KIE 84:4]
    let f = kiessling_count_bug();
    let r = run(&f, Q2);
    assert_eq!(int_column_sorted(&r, 0), vec![8, 10]);
}

#[test]
fn q5_yields_8() {
    // Section 5.3: "The result according to nested iteration semantics,
    // assuming MAX({}) = NULL, is {8}".
    let f = non_equality_bug();
    let r = run(&f, Q5);
    assert_eq!(int_column_sorted(&r, 0), vec![8]);
}

#[test]
fn q2_on_duplicates_data_yields_3_10_8() {
    // Section 5.4: with duplicates in PARTS.PNUM the nested-iteration
    // result is {3, 10, 8}.
    let f = duplicates_problem();
    let r = run(&f, Q2);
    assert_eq!(int_column_sorted(&r, 0), vec![3, 8, 10]);
}

#[test]
fn q2_with_count_star_matches_count_column_here() {
    // With no NULL shipdates, COUNT(*) and COUNT(SHIPDATE) agree under
    // nested iteration (the divergence is in Kim-style transformation).
    let f = kiessling_count_bug();
    let starred = Q2.replace("COUNT(SHIPDATE)", "COUNT(*)");
    let r = run(&f, &starred);
    assert_eq!(int_column_sorted(&r, 0), vec![8, 10]);
}

#[test]
fn type_a_constant_subquery() {
    // Query (2)-style: uncorrelated aggregate inner block.
    let f = suppliers_parts();
    let r = run(&f, "SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)");
    // MAX(PNO) = 'P6'; only S1 supplies P6.
    let names: Vec<&Value> = r.tuples().iter().map(|t| t.get(0)).collect();
    assert_eq!(names, vec![&Value::str("S1")]);
}

#[test]
fn type_n_membership() {
    // Query (3)-style: parts heavier than 15.
    let f = suppliers_parts();
    let r = run(&f, "SELECT SNO, PNO FROM SP WHERE PNO IS IN \
                     (SELECT PNO FROM P WHERE WEIGHT > 15)");
    // P2, P3, P6 weigh > 15.
    assert_eq!(r.len(), 6);
    for t in r.tuples() {
        let Value::Str(p) = t.get(1) else { panic!() };
        assert!(["P2", "P3", "P6"].contains(&p.as_str()), "{p}");
    }
}

#[test]
fn type_j_correlated_membership() {
    // Query (4): suppliers with a shipment whose origin is their own city
    // and QTY > 100.
    let f = suppliers_parts();
    let r = run(
        &f,
        "SELECT SNAME FROM S WHERE SNO IS IN \
         (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
    );
    let mut names: Vec<String> = r
        .tuples()
        .iter()
        .map(|t| t.get(0).to_string())
        .collect();
    names.sort();
    // S1 (LONDON: P1 300, P4 200), S2 (PARIS: P1 300, P2 400),
    // S3 (PARIS: P2 200), S4 (LONDON: P2 200, P4 300, P5 400).
    assert_eq!(names, vec!["BLAKE", "CLARK", "JONES", "SMITH"]);
}

#[test]
fn type_ja_correlated_aggregate() {
    // Query (5): parts with the highest part number among shipments from
    // their city.
    let f = suppliers_parts();
    let r = run(
        &f,
        "SELECT PNAME, PNO FROM P WHERE PNO = \
         (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
    );
    let mut pnos: Vec<String> = r.tuples().iter().map(|t| t.get(1).to_string()).collect();
    pnos.sort();
    // LONDON shipments: P1 P4 P2 P5 P6 → max P6; PARIS: P2 P5 P1 → max P5;
    // ROME: P3 → max P3. Parts whose own PNO equals that max and city
    // matches: P6 (LONDON), P5 (PARIS), P3 (ROME).
    assert_eq!(pnos, vec!["P3", "P5", "P6"]);
}

#[test]
fn exists_and_not_exists() {
    let f = suppliers_parts();
    let r = run(
        &f,
        "SELECT SNO FROM S WHERE EXISTS \
         (SELECT SNO FROM SP WHERE SP.SNO = S.SNO)",
    );
    assert_eq!(r.len(), 4, "S5 has no shipments");
    let r = run(
        &f,
        "SELECT SNO FROM S WHERE NOT EXISTS \
         (SELECT SNO FROM SP WHERE SP.SNO = S.SNO)",
    );
    let names: Vec<String> = r.tuples().iter().map(|t| t.get(0).to_string()).collect();
    assert_eq!(names, vec!["S5"]);
}

#[test]
fn quantified_any_all_semantics() {
    let f = suppliers_parts();
    // QTY >= ALL: the maximum shipment quantities.
    let r = run(
        &f,
        "SELECT SNO, PNO FROM SP WHERE QTY >= ALL (SELECT QTY FROM SP)",
    );
    for t in r.tuples() {
        // max QTY is 400.
        assert!(!r.is_empty());
        let _ = t;
    }
    assert_eq!(r.len(), 3, "three shipments of 400");
    // < ANY: anything below the maximum.
    let r = run(&f, "SELECT SNO FROM SP WHERE QTY < ANY (SELECT QTY FROM SP)");
    assert_eq!(r.len(), 9, "all but the three maxima");
}

#[test]
fn all_over_empty_set_is_true_any_false() {
    let f = suppliers_parts();
    // Inner block is empty (no shipments with QTY > 1000).
    let r = run(
        &f,
        "SELECT SNO FROM S WHERE STATUS < ALL (SELECT QTY FROM SP WHERE QTY > 1000)",
    );
    assert_eq!(r.len(), 5, "ALL over empty set is TRUE");
    let r = run(
        &f,
        "SELECT SNO FROM S WHERE STATUS < ANY (SELECT QTY FROM SP WHERE QTY > 1000)",
    );
    assert_eq!(r.len(), 0, "ANY over empty set is FALSE");
}

#[test]
fn scalar_subquery_of_empty_is_null() {
    let f = suppliers_parts();
    // MAX over empty set is NULL → comparison unknown → row dropped.
    let r = run(
        &f,
        "SELECT SNO FROM S WHERE STATUS = (SELECT MAX(QTY) FROM SP WHERE QTY > 1000)",
    );
    assert!(r.is_empty());
}

#[test]
fn scalar_subquery_cardinality_error() {
    let f = suppliers_parts();
    let q = parse_query("SELECT SNO FROM S WHERE STATUS = (SELECT QTY FROM SP)").unwrap();
    let e = NestedIter::new(&f.provider, f.storage.clone()).eval_query(&q);
    assert!(matches!(
        e,
        Err(nsql_engine::EngineError::ScalarSubqueryCardinality(_))
    ));
}

#[test]
fn uncorrelated_inner_is_evaluated_once() {
    // System R evaluates a type-N inner block once; the inner relation's
    // pages must not be re-read per outer tuple (beyond the stored list).
    let f = suppliers_parts();
    f.storage.clear_buffer();
    f.storage.reset_stats();
    let _ = run(&f, "SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P)");
    let p_pages = f.provider.get_table("P").unwrap().page_count() as u64;
    let reads = f.storage.io_stats().reads;
    // P is read exactly once; the cached list (1 page at this size) is
    // rescanned per outer tuple but P itself is not.
    let sp_pages = f.provider.get_table("SP").unwrap().page_count() as u64;
    let sp_tuples = f.provider.get_table("SP").unwrap().tuple_count() as u64;
    assert!(
        reads <= p_pages + sp_pages + sp_tuples + 2,
        "reads {reads} too high: P must be scanned once, not per outer tuple"
    );
}

#[test]
fn correlated_inner_rescans_per_outer_tuple() {
    // The System R inefficiency the paper opens with: the inner relation is
    // retrieved once per outer tuple.
    let f = suppliers_parts();
    f.storage.clear_buffer();
    f.storage.reset_stats();
    let _ = run(
        &f,
        "SELECT SNAME FROM S WHERE SNO IS IN \
         (SELECT SNO FROM SP WHERE SP.ORIGIN = S.CITY)",
    );
    let s_count = f.provider.get_table("S").unwrap().tuple_count() as u64;
    let sp_pages = f.provider.get_table("SP").unwrap().page_count() as u64;
    let reads = f.storage.io_stats().reads;
    // At least one full SP scan per S tuple (everything fits in buffer here
    // only if SP ≤ B pages; with the default sizes SP is 1 page, so allow
    // the cached case but require per-tuple evaluation to have happened).
    assert!(reads >= 1);
    let _ = (s_count, sp_pages);
}

#[test]
fn order_by_and_distinct() {
    let f = suppliers_parts();
    let r = run(&f, "SELECT DISTINCT ORIGIN FROM SP ORDER BY ORIGIN DESC");
    let vals: Vec<String> = r.tuples().iter().map(|t| t.get(0).to_string()).collect();
    assert_eq!(vals, vec!["ROME", "PARIS", "LONDON"]);
}

#[test]
fn group_by_with_aggregates() {
    let f = suppliers_parts();
    let r = run(
        &f,
        "SELECT SNO, COUNT(PNO), MAX(QTY) FROM SP GROUP BY SNO ORDER BY SNO",
    );
    assert_eq!(r.len(), 4);
    let first = &r.tuples()[0];
    assert_eq!(first.get(0), &Value::str("S1"));
    assert_eq!(first.get(1), &Value::Int(6));
    assert_eq!(first.get(2), &Value::Int(400));
}

#[test]
fn nested_depth_two_correlation_to_middle_scope() {
    let f = suppliers_parts();
    // Inner-most block references P (middle scope), not S.
    let r = run(
        &f,
        "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
         (SELECT PNO FROM P WHERE P.CITY = S.CITY AND WEIGHT > 15))",
    );
    assert!(!r.is_empty());
}
