//! Fault injection: a tuple evaluation failing mid-operator must surface as
//! a typed `Err` — never a panic, never a silently dropped morsel, never a
//! wrong answer — and the error must be *deterministic*: the first error in
//! serial scan order, identical at every thread count. Partial output pages
//! must be freed on the error path.
//!
//! Storage reads are infallible by construction (`Arc<Page>`), so faults are
//! injected at the data level: a value of the wrong type planted on a chosen
//! page makes exactly that tuple's evaluation fail with a `TypeError`.

use nsql_engine::{AggSpec, CPred, EngineError, Exec};
use nsql_sql::{parse_query, AggFunc};
use nsql_storage::{HeapFile, Storage};
use nsql_types::{Column, ColumnType, Schema, Tuple, Value};

const ROWS: i64 = 600;

/// A two-column file `T(A, B)` of `ROWS` int rows, with `poison[i] = (row,
/// value)` planting arbitrary values into column B of chosen rows. With
/// 256-byte pages this spans many pages, so chosen rows land on chosen
/// pages.
fn poisoned_file(storage: &Storage, poison: &[(i64, Value)]) -> HeapFile {
    poisoned_file_named(storage, "T", poison)
}

fn poisoned_file_named(storage: &Storage, table: &str, poison: &[(i64, Value)]) -> HeapFile {
    let schema = Schema::new(vec![
        Column::qualified(table, "A", ColumnType::Int),
        Column::qualified(table, "B", ColumnType::Int),
    ]);
    let file = HeapFile::from_tuples(
        storage,
        schema,
        (0..ROWS).map(|i| {
            let b = poison
                .iter()
                .find(|(r, _)| *r == i)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Int(i % 97));
            Tuple::new(vec![Value::Int(i), b])
        }),
    );
    assert!(file.page_count() > 4, "fault pages must be interior, not the only page");
    file
}

fn filter_pred(f: &HeapFile) -> CPred {
    let q = parse_query("SELECT T.A FROM T WHERE B < 50").unwrap();
    CPred::compile(f.schema(), q.where_clause.as_ref().unwrap()).unwrap()
}

/// Run `op` at threads 1 and 4 over identically-built poisoned storage;
/// both must fail with the *same* typed error, and the storage must hold
/// exactly the input pages afterwards (no leaked partial output).
fn check_fails_identically<F>(label: &str, poison: &[(i64, Value)], op: F) -> EngineError
where
    F: Fn(&Exec, &HeapFile) -> Result<(), EngineError>,
{
    let mut errs = Vec::new();
    for threads in [1, 4] {
        let e = Exec::with_threads(Storage::new(6, 256), threads);
        let f = poisoned_file(e.storage(), poison);
        let live_before = e.storage().live_pages();
        let err = op(&e, &f).expect_err(&format!("{label}: poisoned run must fail"));
        assert_eq!(
            e.storage().live_pages(),
            live_before,
            "{label}: error path leaked output pages at {threads} threads"
        );
        errs.push(err);
    }
    assert_eq!(errs[0], errs[1], "{label}: error diverged between 1 and 4 threads");
    errs.pop().unwrap()
}

#[test]
fn filter_surfaces_poisoned_page_as_error() {
    let err = check_fails_identically(
        "filter",
        &[(300, Value::str("rot"))],
        |e, f| e.filter(f, &filter_pred(f)).map(|_| ()),
    );
    assert!(matches!(err, EngineError::Type(_)), "want TypeError, got {err:?}");
}

#[test]
fn first_error_in_scan_order_wins() {
    // Two incompatible poisons on different pages: a STR at row 150 and a
    // DATE at row 450. Whatever order morsels complete in, the caller must
    // see the STR comparison failure — the first in serial scan order.
    let err = check_fails_identically(
        "filter/two-faults",
        &[(450, Value::date("1-1-80").unwrap()), (150, Value::str("rot"))],
        |e, f| e.filter(f, &filter_pred(f)).map(|_| ()),
    );
    let msg = err.to_string();
    assert!(
        msg.contains("STR") || msg.contains("Str") || msg.to_uppercase().contains("STR"),
        "expected the row-150 STR fault to win, got: {msg}"
    );
}

#[test]
fn aggregation_surfaces_poisoned_page_as_error() {
    let out_schema = Schema::new(vec![Column::new("S", ColumnType::Int)]);
    let err = check_fails_identically(
        "group_aggregate",
        &[(300, Value::str("rot"))],
        |e, f| {
            e.group_aggregate(f, &[], &[AggSpec::on(AggFunc::Sum, 1)], out_schema.clone(), false)
                .map(|_| ())
        },
    );
    assert!(matches!(err, EngineError::Type(_)), "want TypeError, got {err:?}");
}

#[test]
fn restrict_project_surfaces_poisoned_page_as_error() {
    let out_schema = Schema::new(vec![Column::qualified("O", "A", ColumnType::Int)]);
    let err = check_fails_identically(
        "restrict_project",
        &[(300, Value::str("rot"))],
        |e, f| {
            e.restrict_project(
                f,
                &filter_pred(f),
                &[nsql_engine::CExpr::Col(0)],
                out_schema.clone(),
                false,
            )
            .map(|_| ())
        },
    );
    assert!(matches!(err, EngineError::Type(_)), "want TypeError, got {err:?}");
}

#[test]
fn hash_join_residual_fault_surfaces_as_error() {
    // The poison sits in the probe side's residual-predicate column.
    let mut errs = Vec::new();
    for threads in [1, 4] {
        let e = Exec::with_threads(Storage::new(6, 256), threads);
        let l = poisoned_file(e.storage(), &[(300, Value::str("rot"))]);
        let r = poisoned_file_named(e.storage(), "U", &[]);
        let combined = l.schema().join(r.schema());
        let q = parse_query("SELECT T.A FROM T, U WHERE T.B < 50").unwrap();
        let res = CPred::compile(&combined, q.where_clause.as_ref().unwrap()).unwrap();
        let live_before = e.storage().live_pages();
        let err = e
            .hash_join(&l, &r, &[0], &[0], Some(&res), nsql_engine::JoinKind::Inner)
            .map(|_| ())
            .expect_err("poisoned residual must fail");
        assert_eq!(e.storage().live_pages(), live_before, "leaked pages at {threads} threads");
        errs.push(err);
    }
    assert_eq!(errs[0], errs[1], "hash join error diverged between thread counts");
}

/// Sanity: a *clean* run of the same shapes succeeds — the harness fails
/// because of the fault, not the setup.
#[test]
fn unpoisoned_runs_succeed() {
    for threads in [1, 4] {
        let e = Exec::with_threads(Storage::new(6, 256), threads);
        let f = poisoned_file(e.storage(), &[]);
        assert!(e.filter(&f, &filter_pred(&f)).is_ok());
    }
}
