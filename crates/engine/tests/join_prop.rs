//! Property tests: the three join algorithms agree with each other on
//! random inputs (including NULL keys, duplicates, and empty sides), for
//! both inner and left-outer joins.

use nsql_engine::{CPred, Exec, JoinKind};
use nsql_sql::parse_query;
use nsql_storage::{HeapFile, Storage};
use nsql_testkit::{forall, prop_assert, prop_assert_eq, Rng};
use nsql_types::{Column, ColumnType, Schema, Tuple, Value};

fn file_of(st: &Storage, table: &str, rows: &[(Option<i64>, i64)]) -> HeapFile {
    let schema = Schema::new(vec![
        Column::qualified(table, "K", ColumnType::Int),
        Column::qualified(table, "V", ColumnType::Int),
    ]);
    HeapFile::from_tuples(
        st,
        schema,
        rows.iter().map(|&(k, v)| {
            Tuple::new(vec![k.map_or(Value::Null, Value::Int), Value::Int(v)])
        }),
    )
}

fn eq_pred(l: &HeapFile, r: &HeapFile) -> CPred {
    let combined = l.schema().join(r.schema());
    let q = parse_query("SELECT L.V FROM L, R WHERE L.K = R.K").unwrap();
    CPred::compile(&combined, q.where_clause.as_ref().unwrap()).unwrap()
}

/// Keys: mostly small ints (forcing duplicates and matches), some NULLs.
fn side(rng: &mut Rng) -> Vec<(Option<i64>, i64)> {
    let n = rng.gen_range(0usize..25);
    (0..n)
        .map(|_| {
            let k = if rng.gen_bool(0.9) { Some(rng.gen_range(0i64..6)) } else { None };
            (k, rng.gen_range(0i64..100))
        })
        .collect()
}

#[test]
fn all_join_algorithms_agree() {
    forall(
        128,
        "all_join_algorithms_agree",
        |rng| (side(rng), side(rng), rng.gen_bool(0.5)),
        |(left, right, outer)| {
            let st = Storage::with_defaults();
            let e = Exec::new(st.clone());
            let l = file_of(&st, "L", left);
            let r = file_of(&st, "R", right);
            let kind = if *outer { JoinKind::LeftOuter } else { JoinKind::Inner };

            let nl = e.nl_join(&l, &r, &eq_pred(&l, &r), kind).unwrap();
            let mj = e
                .merge_join(&l, &r, &[0], &[0], None, kind, false, false)
                .unwrap();
            let hj = e.hash_join(&l, &r, &[0], &[0], None, kind).unwrap();

            let nl_rel = e.collect(&nl);
            let mj_rel = e.collect(&mj);
            let hj_rel = e.collect(&hj);
            prop_assert!(
                nl_rel.same_bag(&mj_rel),
                "{kind:?} NL vs MJ\nNL:\n{nl_rel}\nMJ:\n{mj_rel}"
            );
            prop_assert!(
                nl_rel.same_bag(&hj_rel),
                "{kind:?} NL vs HJ\nNL:\n{nl_rel}\nHJ:\n{hj_rel}"
            );
            Ok(())
        },
    );
}

/// The missing residual coverage: all three algorithms must also agree when
/// an extra non-equi predicate filters the key matches. NL evaluates the
/// conjunction directly; MJ and HJ take the equi part as keys and `L.V < R.V`
/// as a residual — three different code paths, one bag.
#[test]
fn all_join_algorithms_agree_with_residual_predicate() {
    forall(
        128,
        "all_join_algorithms_agree_with_residual_predicate",
        |rng| (side(rng), side(rng), rng.gen_bool(0.5)),
        |(left, right, outer)| {
            let st = Storage::with_defaults();
            let e = Exec::new(st.clone());
            let l = file_of(&st, "L", left);
            let r = file_of(&st, "R", right);
            let kind = if *outer { JoinKind::LeftOuter } else { JoinKind::Inner };

            let combined = l.schema().join(r.schema());
            let full = parse_query("SELECT L.V FROM L, R WHERE L.K = R.K AND L.V < R.V").unwrap();
            let on = CPred::compile(&combined, full.where_clause.as_ref().unwrap()).unwrap();
            let res_q = parse_query("SELECT L.V FROM L, R WHERE L.V < R.V").unwrap();
            let residual = CPred::compile(&combined, res_q.where_clause.as_ref().unwrap()).unwrap();

            let nl = e.nl_join(&l, &r, &on, kind).unwrap();
            let mj = e
                .merge_join(&l, &r, &[0], &[0], Some(&residual), kind, false, false)
                .unwrap();
            let hj = e.hash_join(&l, &r, &[0], &[0], Some(&residual), kind).unwrap();

            let nl_rel = e.collect(&nl);
            let mj_rel = e.collect(&mj);
            let hj_rel = e.collect(&hj);
            prop_assert!(
                nl_rel.same_bag(&mj_rel),
                "{kind:?} NL vs MJ (residual)\nNL:\n{nl_rel}\nMJ:\n{mj_rel}"
            );
            prop_assert!(
                nl_rel.same_bag(&hj_rel),
                "{kind:?} NL vs HJ (residual)\nNL:\n{nl_rel}\nHJ:\n{hj_rel}"
            );
            Ok(())
        },
    );
}

#[test]
fn outer_join_covers_every_left_tuple_exactly_once_or_more() {
    forall(
        128,
        "outer_join_covers_every_left_tuple_exactly_once_or_more",
        |rng| (side(rng), side(rng)),
        |(left, right)| {
            let st = Storage::with_defaults();
            let e = Exec::new(st.clone());
            let l = file_of(&st, "L", left);
            let r = file_of(&st, "R", right);
            let mj = e
                .merge_join(&l, &r, &[0], &[0], None, JoinKind::LeftOuter, false, false)
                .unwrap();
            let rel = e.collect(&mj);
            // Every left tuple appears at least once (padded or matched), and
            // left tuples with NULL keys appear exactly once (padded).
            prop_assert!(rel.len() >= l.tuple_count());
            let null_key_count = left.iter().filter(|(k, _)| k.is_none()).count();
            let padded_nulls = rel
                .tuples()
                .iter()
                .filter(|t| t.get(0).is_null() && t.get(2).is_null())
                .count();
            prop_assert_eq!(padded_nulls, null_key_count);
            Ok(())
        },
    );
}

#[test]
fn inner_join_cardinality_matches_key_histogram() {
    forall(
        128,
        "inner_join_cardinality_matches_key_histogram",
        |rng| (side(rng), side(rng)),
        |(left, right)| {
            use std::collections::HashMap;
            let st = Storage::with_defaults();
            let e = Exec::new(st.clone());
            let l = file_of(&st, "L", left);
            let r = file_of(&st, "R", right);
            let hj = e.hash_join(&l, &r, &[0], &[0], None, JoinKind::Inner).unwrap();
            let mut hist: HashMap<i64, usize> = HashMap::new();
            for (k, _) in right {
                if let Some(k) = k {
                    *hist.entry(*k).or_default() += 1;
                }
            }
            let expected: usize = left
                .iter()
                .filter_map(|(k, _)| k.as_ref())
                .map(|k| hist.get(k).copied().unwrap_or(0))
                .sum();
            prop_assert_eq!(hj.tuple_count(), expected);
            Ok(())
        },
    );
}
