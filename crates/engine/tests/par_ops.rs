//! Serial-vs-parallel equivalence for the morsel-parallel operators:
//! identical rows (in order — the parallel paths are order-preserving by
//! construction), identical I/O totals, identical buffer hit/miss splits.

use nsql_engine::{AggSpec, CPred, Exec, JoinKind};
use nsql_sql::{parse_query, AggFunc};
use nsql_storage::{HeapFile, Storage};
use nsql_types::{Column, ColumnType, Schema, Tuple, Value};

fn file_of(storage: &Storage, table: &str, cols: &[&str], rows: &[Vec<i64>]) -> HeapFile {
    let schema = Schema::new(
        cols.iter().map(|c| Column::qualified(table, *c, ColumnType::Int)).collect(),
    );
    HeapFile::from_tuples(
        storage,
        schema,
        rows.iter().map(|r| r.iter().map(|&v| Value::Int(v)).collect::<Tuple>()),
    )
}

fn rows(storage: &Storage, f: &HeapFile) -> Vec<Tuple> {
    f.scan(storage).collect()
}

/// Run `op` under a serial and a 4-thread executor over identically-built
/// storages and demand identical output files and identical I/O accounting.
fn check<F>(label: &str, op: F)
where
    F: Fn(&Exec) -> HeapFile,
{
    let mut results = Vec::new();
    for threads in [1, 4] {
        let e = Exec::with_threads(Storage::new(6, 256), threads);
        let out = op(&e);
        let out_rows = rows(e.storage(), &out);
        results.push((out_rows, e.storage().io_stats(), e.storage().buffer_stats()));
    }
    let (serial, par) = (&results[0], &results[1]);
    assert_eq!(serial.0, par.0, "{label}: rows diverged");
    assert_eq!(serial.1, par.1, "{label}: I/O totals diverged");
    assert_eq!(serial.2, par.2, "{label}: buffer hit/miss diverged");
}

fn parts_rows(n: i64) -> Vec<Vec<i64>> {
    (0..n).map(|i| vec![i, (i * 7919) % 101, i % 7]).collect()
}

fn pair_rows(n: i64) -> Vec<Vec<i64>> {
    (0..n).map(|i| vec![i, (i * 7919) % 101]).collect()
}

#[test]
fn parallel_filter_matches_serial() {
    check("filter", |e| {
        let f = file_of(e.storage(), "T", &["A", "B", "C"], &parts_rows(600));
        let q = parse_query("SELECT T.A FROM T WHERE B < 50").unwrap();
        let p = CPred::compile(f.schema(), q.where_clause.as_ref().unwrap()).unwrap();
        e.storage().clear_buffer();
        e.storage().reset_stats();
        e.filter(&f, &p).unwrap()
    });
}

#[test]
fn parallel_restrict_project_distinct_matches_serial() {
    check("restrict_project", |e| {
        let f = file_of(e.storage(), "T", &["A", "B", "C"], &parts_rows(600));
        let q = parse_query("SELECT T.C FROM T WHERE B < 70").unwrap();
        let p = CPred::compile(f.schema(), q.where_clause.as_ref().unwrap()).unwrap();
        let out_schema = Schema::new(vec![Column::qualified("O", "C", ColumnType::Int)]);
        e.storage().clear_buffer();
        e.storage().reset_stats();
        e.restrict_project(&f, &p, &[nsql_engine::CExpr::Col(2)], out_schema, true).unwrap()
    });
}

#[test]
fn parallel_hash_join_matches_serial() {
    for kind in [JoinKind::Inner, JoinKind::LeftOuter] {
        check(&format!("hash_join {kind:?}"), |e| {
            let l = file_of(e.storage(), "L", &["A", "X"], &pair_rows(400));
            let r = file_of(
                e.storage(),
                "R",
                &["B", "Y"],
                &(0..300).map(|i| vec![(i * 3) % 150, i]).collect::<Vec<_>>(),
            );
            e.storage().clear_buffer();
            e.storage().reset_stats();
            e.hash_join(&l, &r, &[0], &[0], None, kind).unwrap()
        });
    }
}

#[test]
fn parallel_hash_join_with_residual_matches_serial() {
    check("hash_join residual", |e| {
        let l = file_of(e.storage(), "L", &["A", "X"], &pair_rows(300));
        let r = file_of(
            e.storage(),
            "R",
            &["B", "Y"],
            &(0..200).map(|i| vec![i % 60, i % 11]).collect::<Vec<_>>(),
        );
        let combined = l.schema().join(r.schema());
        let q = parse_query("SELECT L.A FROM L, R WHERE L.X > R.Y").unwrap();
        let res = CPred::compile(&combined, q.where_clause.as_ref().unwrap()).unwrap();
        e.storage().clear_buffer();
        e.storage().reset_stats();
        e.hash_join(&l, &r, &[0], &[0], Some(&res), JoinKind::LeftOuter).unwrap()
    });
}

#[test]
fn parallel_group_aggregate_matches_serial() {
    let out_schema = || {
        Schema::new(vec![
            Column::new("G", ColumnType::Int),
            Column::new("C", ColumnType::Int),
            Column::new("S", ColumnType::Int),
            Column::new("M", ColumnType::Int),
        ])
    };
    // Unsorted input: the operator sorts first (parallel run generation),
    // then folds (parallel run merge).
    check("group_aggregate unsorted", |e| {
        let f = file_of(e.storage(), "T", &["K", "V"],
            &(0..700).map(|i| vec![(i * 37) % 23, i]).collect::<Vec<_>>());
        e.storage().clear_buffer();
        e.storage().reset_stats();
        e.group_aggregate(
            &f,
            &[0],
            &[AggSpec::count_star(), AggSpec::on(AggFunc::Sum, 1), AggSpec::on(AggFunc::Max, 1)],
            out_schema(),
            false,
        )
        .unwrap()
    });
    // Presorted input: groups split across morsel boundaries exercise
    // AggState::merge.
    check("group_aggregate presorted", |e| {
        let mut data: Vec<Vec<i64>> = (0..700).map(|i| vec![(i * 37) % 23, i]).collect();
        data.sort();
        let f = file_of(e.storage(), "T", &["K", "V"], &data);
        e.storage().clear_buffer();
        e.storage().reset_stats();
        e.group_aggregate(
            &f,
            &[0],
            &[AggSpec::count_star(), AggSpec::on(AggFunc::Sum, 1), AggSpec::on(AggFunc::Max, 1)],
            out_schema(),
            true,
        )
        .unwrap()
    });
}

#[test]
fn parallel_global_aggregate_matches_serial() {
    check("global aggregate", |e| {
        let f = file_of(e.storage(), "T", &["K", "V"], &pair_rows(500));
        let s = Schema::new(vec![
            Column::new("C", ColumnType::Int),
            Column::new("M", ColumnType::Int),
        ]);
        e.storage().clear_buffer();
        e.storage().reset_stats();
        e.group_aggregate(
            &f,
            &[],
            &[AggSpec::count_star(), AggSpec::on(AggFunc::Min, 1)],
            s,
            false,
        )
        .unwrap()
    });
}

#[test]
fn parallel_sort_via_exec_matches_serial() {
    use nsql_storage::sort::SortKey;
    check("sort", |e| {
        let f = file_of(e.storage(), "T", &["A", "B", "C"], &parts_rows(800));
        e.storage().clear_buffer();
        e.storage().reset_stats();
        e.sort(&f, &[SortKey::asc(1), SortKey::desc(0)], false)
    });
}
