//! Vectorized-vs-row equivalence for nested iteration.
//!
//! The vectorized fast path (batch predicate kernels plus per-binding
//! memoization of fully-simple correlated blocks) must be invisible to
//! everything we measure: result relations, error values, I/O totals,
//! and buffer hit/miss splits, serial and morsel-parallel alike.

use nsql_engine::fixtures::{suppliers_parts, Fixture};
use nsql_engine::provider::MemoryProvider;
use nsql_engine::NestedIter;
use nsql_sql::parse_query;
use nsql_storage::{IoStats, Storage};
use nsql_types::{ColumnType, Relation, Schema, Tuple, Value};

/// Multi-page PARTS/SUPPLY with NULLs in both the membership column and
/// the correlation column, plus duplicate outer correlation values (the
/// case the memo must get right).
fn setup() -> (Storage, MemoryProvider) {
    let storage = Storage::new(6, 256);
    let mut provider = MemoryProvider::new();
    let parts = Relation::new(
        Schema::of_table(
            "PARTS",
            &[
                ("PNUM", ColumnType::Int),
                ("QOH", ColumnType::Int),
                ("GRP", ColumnType::Int),
            ],
        ),
        (0..240)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i % 60),
                    if i % 17 == 0 { Value::Null } else { Value::Int((i * 13) % 9) },
                    Value::Int(i % 3),
                ])
            })
            .collect(),
    )
    .unwrap();
    let supply = Relation::new(
        Schema::of_table(
            "SUPPLY",
            &[("PNUM", ColumnType::Int), ("QUAN", ColumnType::Int)],
        ),
        (0..360)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i % 90),
                    if i % 23 == 0 { Value::Null } else { Value::Int((i * 7) % 9) },
                ])
            })
            .collect(),
    )
    .unwrap();
    provider.register("PARTS", storage.store_relation(&parts));
    provider.register("SUPPLY", storage.store_relation(&supply));
    storage.reset_stats();
    (storage, provider)
}

type RunOutcome = (Result<Relation, String>, IoStats, (u64, u64));

fn run(sql: &str, vectorized: bool, threads: usize) -> RunOutcome {
    let (storage, provider) = setup();
    storage.clear_buffer();
    storage.reset_stats();
    let q = parse_query(sql).unwrap();
    let ni = NestedIter::new(&provider, storage.clone()).with_vectorized(vectorized);
    let res = ni.eval_query_threads(&q, threads).map_err(|e| format!("{e:?}"));
    (res, storage.io_stats(), storage.buffer_stats())
}

fn run_fixture(make: fn() -> Fixture, sql: &str, vectorized: bool, threads: usize) -> RunOutcome {
    let f = make();
    f.storage.clear_buffer();
    f.storage.reset_stats();
    let q = parse_query(sql).unwrap();
    let ni = NestedIter::new(&f.provider, f.storage.clone()).with_vectorized(vectorized);
    let res = ni.eval_query_threads(&q, threads).map_err(|e| format!("{e:?}"));
    (res, f.storage.io_stats(), f.storage.buffer_stats())
}

fn assert_modes_agree<F: Fn(bool, usize) -> RunOutcome>(label: &str, go: F) {
    let base = go(false, 1);
    for (vectorized, threads) in [(false, 4), (true, 1), (true, 4)] {
        let other = go(vectorized, threads);
        assert_eq!(
            base.0, other.0,
            "{label} vec={vectorized} threads={threads}: results diverged"
        );
        assert_eq!(
            base.1, other.1,
            "{label} vec={vectorized} threads={threads}: I/O diverged"
        );
        assert_eq!(
            base.2, other.2,
            "{label} vec={vectorized} threads={threads}: buffer hit/miss diverged"
        );
    }
}

/// The paper's nesting types over the synthetic multi-page data:
/// type-J (correlated membership — memoized fast path), type-JA
/// (correlated aggregate), type-N/A (uncorrelated), plus declined shapes
/// (multi-file FROM) and plain selections with NULL-heavy predicates.
const QUERIES: &[&str] = &[
    // Type-J with a simple outer conjunct — the headline fast path.
    "SELECT PNUM FROM PARTS WHERE GRP = 0 AND QOH IN \
     (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
    // Type-JA correlated aggregate.
    "SELECT PNUM FROM PARTS WHERE QOH = \
     (SELECT MAX(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
    // Type-N uncorrelated membership (cached list, not the memo).
    "SELECT PNUM FROM PARTS WHERE QOH IN (SELECT QUAN FROM SUPPLY WHERE QUAN > 5)",
    // Type-A uncorrelated scalar.
    "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY)",
    // Multi-file FROM: the fast path declines, results must still agree.
    "SELECT PARTS.PNUM FROM PARTS, SUPPLY \
     WHERE PARTS.PNUM = SUPPLY.PNUM AND SUPPLY.QUAN > 6",
    // NULL-heavy three-valued connectives and IS NULL.
    "SELECT PNUM FROM PARTS WHERE QOH > 3 OR QOH IS NULL",
    "SELECT PNUM FROM PARTS WHERE NOT (QOH > 3 AND GRP = 1)",
    // Grouped aggregate over survivors of a simple predicate.
    "SELECT PNUM, COUNT(QUAN) FROM SUPPLY WHERE QUAN > 2 GROUP BY PNUM ORDER BY PNUM",
    // DISTINCT + ORDER BY on the fast path's survivors.
    "SELECT DISTINCT GRP FROM PARTS WHERE QOH > 1 ORDER BY GRP DESC",
];

#[test]
fn vectorized_nested_iteration_matches_row_path() {
    for sql in QUERIES {
        assert_modes_agree(sql, |v, t| run(sql, v, t));
    }
}

#[test]
fn vectorized_errors_match_row_path() {
    // GRP = 0 admits bindings whose QOH comparison then type-errors;
    // both paths must report the same error after the same I/O.
    let bad = "SELECT PNUM FROM PARTS WHERE QOH IN \
               (SELECT QUAN FROM SUPPLY WHERE SUPPLY.QUAN > PARTS.PNUM AND SUPPLY.PNUM = 1-1-80)";
    assert_modes_agree(bad, |v, t| run(bad, v, t));
    let (res, _, _) = run(bad, true, 1);
    assert!(res.is_err(), "expected a type error from Int-vs-Date comparison");
}

#[test]
fn vectorized_matches_row_path_on_paper_fixture() {
    // String correlation values exercise the dictionary columns and
    // string-keyed memoization.
    for sql in [
        "SELECT SNAME FROM S WHERE SNO IS IN \
         (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
        "SELECT SNO, PNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 15)",
    ] {
        assert_modes_agree(sql, |v, t| run_fixture(suppliers_parts, sql, v, t));
    }
}
