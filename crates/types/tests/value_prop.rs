//! Property tests for the value layer: the total order is a genuine total
//! order, SQL comparison agrees with it on non-null comparable values,
//! grouping equality is consistent with hashing, and date ordinals are
//! order-isomorphic to dates.

use nsql_testkit::gen;
use nsql_testkit::{forall, prop_assert, prop_assert_eq, Rng};
use nsql_types::{Date, Value};
use std::cmp::Ordering;

fn value(rng: &mut Rng) -> Value {
    gen::value(rng)
}

fn ymd(rng: &mut Rng) -> (i32, u8, u8) {
    (rng.gen_range(1900i32..2100), rng.gen_range(1u8..13), rng.gen_range(1u8..29))
}

fn hash_of(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

#[test]
fn total_order_is_total_and_antisymmetric() {
    forall(
        512,
        "total_order_is_total_and_antisymmetric",
        |rng| (value(rng), value(rng)),
        |(a, b)| {
            let ab = a.total_cmp(b);
            let ba = b.total_cmp(a);
            prop_assert_eq!(ab, ba.reverse());
            if ab == Ordering::Equal {
                prop_assert_eq!(hash_of(a), hash_of(b), "equal values must hash alike");
            }
            Ok(())
        },
    );
}

#[test]
fn total_order_is_transitive() {
    forall(
        512,
        "total_order_is_transitive",
        |rng| (value(rng), value(rng), value(rng)),
        |(a, b, c)| {
            let mut v = [a.clone(), b.clone(), c.clone()];
            v.sort_by(|x, y| x.total_cmp(y));
            prop_assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
            Ok(())
        },
    );
}

#[test]
fn sql_cmp_agrees_with_total_order_on_comparables() {
    forall(
        512,
        "sql_cmp_agrees_with_total_order_on_comparables",
        |rng| (value(rng), value(rng)),
        |(a, b)| {
            if let Ok(Some(ord)) = a.sql_cmp(b) {
                prop_assert_eq!(ord, a.total_cmp(b));
            }
            Ok(())
        },
    );
}

#[test]
fn null_comparison_is_always_unknown() {
    forall(512, "null_comparison_is_always_unknown", value, |a| {
        prop_assert_eq!(Value::Null.sql_cmp(a).unwrap(), None);
        prop_assert_eq!(a.sql_cmp(&Value::Null).unwrap(), None);
        Ok(())
    });
}

#[test]
fn date_ordinal_is_order_isomorphic() {
    forall(
        512,
        "date_ordinal_is_order_isomorphic",
        |rng| (ymd(rng), ymd(rng)),
        |&(a, b)| {
            let da = Date::new(a.0, a.1, a.2).expect("valid");
            let db = Date::new(b.0, b.1, b.2).expect("valid");
            prop_assert_eq!(da.cmp(&db), da.to_ordinal().cmp(&db.to_ordinal()));
            prop_assert_eq!(Date::from_ordinal(da.to_ordinal()).expect("roundtrip"), da);
            Ok(())
        },
    );
}

#[test]
fn display_of_date_parses_back() {
    forall(512, "display_of_date_parses_back", ymd, |&(y, m, d)| {
        let date = Date::new(y, m, d).expect("valid");
        let printed = date.to_string();
        prop_assert_eq!(Date::parse(&printed).expect("ISO form"), date);
        Ok(())
    });
}

#[test]
fn int_float_numeric_tower_consistency() {
    forall(
        512,
        "int_float_numeric_tower_consistency",
        |rng| rng.gen_range(-1_000_000i64..1_000_000),
        |&i| {
            let int = Value::Int(i);
            let float = Value::Float(i as f64);
            prop_assert_eq!(int.total_cmp(&float), Ordering::Equal);
            prop_assert_eq!(int.sql_eq(&float).unwrap(), Some(true));
            prop_assert_eq!(hash_of(&int), hash_of(&float));
            Ok(())
        },
    );
}
