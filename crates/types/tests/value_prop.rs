//! Property tests for the value layer: the total order is a genuine total
//! order, SQL comparison agrees with it on non-null comparable values,
//! grouping equality is consistent with hashing, and date ordinals are
//! order-isomorphic to dates.

use nsql_types::{Date, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|v| Value::Int(v.into())),
        (-1_000_000i32..1_000_000).prop_map(|v| Value::Float(f64::from(v) / 100.0)),
        "[a-z]{0,6}".prop_map(Value::str),
        (1900i32..2100, 1u8..13, 1u8..29)
            .prop_map(|(y, m, d)| Value::Date(Date::new(y, m, d).expect("valid"))),
    ]
}

fn hash_of(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn total_order_is_total_and_antisymmetric(a in value(), b in value()) {
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "equal values must hash alike");
        }
    }

    #[test]
    fn total_order_is_transitive(a in value(), b in value(), c in value()) {
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        prop_assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
    }

    #[test]
    fn sql_cmp_agrees_with_total_order_on_comparables(a in value(), b in value()) {
        if let Ok(Some(ord)) = a.sql_cmp(&b) {
            prop_assert_eq!(ord, a.total_cmp(&b));
        }
    }

    #[test]
    fn null_comparison_is_always_unknown(a in value()) {
        prop_assert_eq!(Value::Null.sql_cmp(&a).unwrap(), None);
        prop_assert_eq!(a.sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn date_ordinal_is_order_isomorphic(
        a in (1900i32..2100, 1u8..13, 1u8..29),
        b in (1900i32..2100, 1u8..13, 1u8..29),
    ) {
        let da = Date::new(a.0, a.1, a.2).expect("valid");
        let db = Date::new(b.0, b.1, b.2).expect("valid");
        prop_assert_eq!(da.cmp(&db), da.to_ordinal().cmp(&db.to_ordinal()));
        prop_assert_eq!(Date::from_ordinal(da.to_ordinal()).expect("roundtrip"), da);
    }

    #[test]
    fn display_of_date_parses_back(y in 1900i32..2100, m in 1u8..13, d in 1u8..29) {
        let date = Date::new(y, m, d).expect("valid");
        let printed = date.to_string();
        prop_assert_eq!(Date::parse(&printed).expect("ISO form"), date);
    }

    #[test]
    fn int_float_numeric_tower_consistency(i in -1_000_000i64..1_000_000) {
        let int = Value::Int(i);
        let float = Value::Float(i as f64);
        prop_assert_eq!(int.total_cmp(&float), Ordering::Equal);
        prop_assert_eq!(int.sql_eq(&float).unwrap(), Some(true));
        prop_assert_eq!(hash_of(&int), hash_of(&float));
    }
}
