//! In-memory relations (schema + rows) with the pretty-printer used to
//! render the paper's example tables and multiset comparison for oracles.

use crate::error::TypeError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// An in-memory table: a schema and a bag (multiset) of tuples.
///
/// SQL relations are bags, not sets — the duplicates problem of Section 5.4
/// of the paper exists precisely because of this — so `Relation` preserves
/// duplicates and insertion order. Use [`Relation::canonicalized`] to obtain
/// an order-insensitive form for comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation { schema, tuples: Vec::new() }
    }

    /// Relation from schema and rows, validating arity.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Relation, TypeError> {
        for t in &tuples {
            if t.arity() != schema.arity() {
                return Err(TypeError::ArityMismatch { schema: schema.arity(), tuple: t.arity() });
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a row, validating arity.
    pub fn push(&mut self, tuple: Tuple) -> Result<(), TypeError> {
        if tuple.arity() != self.schema.arity() {
            return Err(TypeError::ArityMismatch {
                schema: self.schema.arity(),
                tuple: tuple.arity(),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Consume into rows.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// A copy with rows sorted into the total order — a canonical form under
    /// which two relations are equal iff they are equal *as multisets*.
    pub fn canonicalized(&self) -> Relation {
        let mut tuples = self.tuples.clone();
        tuples.sort_by(|a, b| a.total_cmp(b));
        Relation { schema: self.schema.clone(), tuples }
    }

    /// Multiset equality of rows (schemas must have equal arity; column
    /// names are ignored, since transformed queries often rename columns).
    pub fn same_bag(&self, other: &Relation) -> bool {
        self.schema.arity() == other.schema.arity()
            && self.canonicalized().tuples == other.canonicalized().tuples
    }

    /// Set equality of rows: multiset equality after duplicate removal.
    /// Used where the paper's faithful transformations only promise
    /// set-level agreement: NEST-N-J's join expansion repeats an outer
    /// tuple once per inner match, so bag equality with nested iteration
    /// holds only for key-valued inner columns. The choice of join-form
    /// multiplicity is an explicit per-query option
    /// (`nsql_db::DuplicateSemantics`, demonstrated end-to-end in
    /// `crates/db/tests/duplicate_semantics.rs`), not a silent comparison
    /// weakening; see DESIGN.md "Oracle semantics" for which equality each
    /// pipeline promises.
    pub fn same_set(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() {
            return false;
        }
        let mut a = self.canonicalized().tuples;
        let mut b = other.canonicalized().tuples;
        a.dedup();
        b.dedup();
        a == b
    }

    /// Single-column relation helper (handy in tests and examples).
    pub fn column(&self, idx: usize) -> Vec<Value> {
        self.tuples.iter().map(|t| t.get(idx).clone()).collect()
    }

    /// Total width in bytes of all rows (storage sizing).
    pub fn storage_width(&self) -> usize {
        self.tuples.iter().map(Tuple::storage_width).sum()
    }
}

impl fmt::Display for Relation {
    /// ASCII-art rendering in the style of the paper's example tables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> =
            self.schema.columns().iter().map(|c| c.qualified_name()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rows: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values().iter().map(Value::to_string).collect())
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", cell, w = widths[i])?;
            }
            writeln!(f)
        };
        let rule: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .chain(std::iter::once("+".to_string()))
            .collect();
        writeln!(f, "{rule}")?;
        line(f, &headers)?;
        writeln!(f, "{rule}")?;
        for row in &rows {
            line(f, row)?;
        }
        writeln!(f, "{rule}")?;
        write!(f, "({} row{})", self.len(), if self.len() == 1 { "" } else { "s" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn rel(rows: &[&[i64]]) -> Relation {
        let schema = Schema::new(
            (0..rows.first().map_or(1, |r| r.len()))
                .map(|i| Column::new(format!("C{i}"), ColumnType::Int))
                .collect(),
        );
        Relation::new(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn arity_checked_on_construction() {
        let schema = Schema::new(vec![Column::new("A", ColumnType::Int)]);
        let bad = Relation::new(schema, vec![Tuple::new(vec![Value::Int(1), Value::Int(2)])]);
        assert!(matches!(bad, Err(TypeError::ArityMismatch { .. })));
    }

    #[test]
    fn same_bag_ignores_order_but_counts_duplicates() {
        let a = rel(&[&[1], &[2], &[2]]);
        let b = rel(&[&[2], &[2], &[1]]);
        let c = rel(&[&[1], &[2]]);
        assert!(a.same_bag(&b));
        assert!(!a.same_bag(&c));
    }

    #[test]
    fn same_set_ignores_duplicates() {
        let a = rel(&[&[1], &[2], &[2]]);
        let c = rel(&[&[2], &[1]]);
        assert!(a.same_set(&c));
        assert!(!a.same_set(&rel(&[&[1]])));
    }

    #[test]
    fn display_renders_table() {
        let r = rel(&[&[3, 6], &[10, 1]]);
        let s = r.to_string();
        assert!(s.contains("C0"), "{s}");
        assert!(s.contains("| 10"), "{s}");
        assert!(s.contains("(2 rows)"), "{s}");
    }

    #[test]
    fn push_validates_arity() {
        let mut r = rel(&[&[1, 2]]);
        assert!(r.push(Tuple::new(vec![Value::Int(1)])).is_err());
        assert!(r.push(Tuple::new(vec![Value::Int(1), Value::Int(2)])).is_ok());
        assert_eq!(r.len(), 2);
    }
}
