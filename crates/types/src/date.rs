//! Calendar dates with the literal syntaxes used by the paper.
//!
//! The paper writes dates three ways: `7-3-79` (month-day-two-digit-year,
//! Kiessling's SUPPLY data), `8/14/77` (Section 5.4), and the comparison
//! bound `1-1-80`. Two-digit years are 19xx throughout, consistent with the
//! 1987 publication date. We also accept ISO `1979-07-03` for convenience.

use crate::error::TypeError;
use std::fmt;

/// A calendar date. Ordering is chronological.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Construct a date, validating month and day ranges.
    ///
    /// Day validity is checked against the month length (with leap years).
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, TypeError> {
        if !(1..=12).contains(&month) {
            return Err(TypeError::BadDate(format!("{year}-{month}-{day}")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(TypeError::BadDate(format!("{year}-{month}-{day}")));
        }
        Ok(Date { year, month, day })
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Parse the paper's literal forms.
    ///
    /// Accepted shapes:
    /// * `M-D-YY` or `M/D/YY` — two-digit year mapped to 19xx (`7-3-79`).
    /// * `M-D-YYYY` or `M/D/YYYY` — explicit four-digit year.
    /// * `YYYY-MM-DD` — ISO form (first component has four digits).
    pub fn parse(s: &str) -> Result<Self, TypeError> {
        let sep = if s.contains('/') { '/' } else { '-' };
        let parts: Vec<&str> = s.split(sep).collect();
        if parts.len() != 3 {
            return Err(TypeError::BadDate(s.to_string()));
        }
        let nums: Vec<i64> = parts
            .iter()
            .map(|p| p.trim().parse::<i64>())
            .collect::<Result<_, _>>()
            .map_err(|_| TypeError::BadDate(s.to_string()))?;
        // ISO when the first component is four digits wide.
        if parts[0].len() == 4 {
            return Date::new(nums[0] as i32, nums[1] as u8, nums[2] as u8);
        }
        let (m, d, y) = (nums[0], nums[1], nums[2]);
        let year = if parts[2].len() <= 2 { 1900 + y } else { y };
        if !(0..=9999).contains(&year) || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(TypeError::BadDate(s.to_string()));
        }
        Date::new(year as i32, m as u8, d as u8)
    }

    /// Days since a fixed epoch (0001-01-01, proleptic Gregorian).
    /// Useful for arithmetic and for synthetic workload generation.
    pub fn to_ordinal(&self) -> i64 {
        let y = i64::from(self.year) - 1;
        let mut days = y * 365 + y / 4 - y / 100 + y / 400;
        for m in 1..self.month {
            days += i64::from(days_in_month(self.year, m));
        }
        days + i64::from(self.day)
    }

    /// Inverse of [`Date::to_ordinal`].
    pub fn from_ordinal(mut ord: i64) -> Result<Self, TypeError> {
        if ord < 1 {
            return Err(TypeError::BadDate(format!("ordinal {ord}")));
        }
        // Find the year by stepping in 400-year cycles then refining.
        let mut year: i32 = 1;
        const CYCLE: i64 = 146_097; // days per 400 years
        year += ((ord - 1) / CYCLE) as i32 * 400;
        ord -= (ord - 1) / CYCLE * CYCLE;
        loop {
            let ylen = if is_leap(year) { 366 } else { 365 };
            if ord <= ylen {
                break;
            }
            ord -= ylen;
            year += 1;
        }
        let mut month: u8 = 1;
        loop {
            let mlen = i64::from(days_in_month(year, month));
            if ord <= mlen {
                break;
            }
            ord -= mlen;
            month += 1;
        }
        Date::new(year, month, ord as u8)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_dash_form() {
        let d = Date::parse("7-3-79").unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (1979, 7, 3));
    }

    #[test]
    fn parses_paper_slash_form() {
        let d = Date::parse("8/14/77").unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (1977, 8, 14));
    }

    #[test]
    fn parses_iso_form() {
        let d = Date::parse("1980-01-01").unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (1980, 1, 1));
    }

    #[test]
    fn kiessling_shipdates_order_correctly() {
        // SUPPLY shipdates from [KIE 84]: the ones before 1-1-80 matter.
        let bound = Date::parse("1-1-80").unwrap();
        let before = ["7-3-79", "10-1-78", "6-8-78"];
        let after = ["8-10-81", "5-7-83"];
        for s in before {
            assert!(Date::parse(s).unwrap() < bound, "{s} should precede 1-1-80");
        }
        for s in after {
            assert!(Date::parse(s).unwrap() > bound, "{s} should follow 1-1-80");
        }
    }

    #[test]
    fn rejects_bad_dates() {
        assert!(Date::parse("13-1-80").is_err());
        assert!(Date::parse("2-30-80").is_err());
        assert!(Date::parse("garbage").is_err());
        assert!(Date::parse("1-2").is_err());
        assert!(Date::new(1980, 2, 30).is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(Date::new(2000, 2, 29).is_ok());
        assert!(Date::new(1900, 2, 29).is_err());
        assert!(Date::new(1980, 2, 29).is_ok());
        assert!(Date::new(1981, 2, 29).is_err());
    }

    #[test]
    fn ordinal_roundtrip() {
        for s in ["7-3-79", "1-1-80", "8/14/77", "2000-02-29", "1-1-01"] {
            let d = Date::parse(s).unwrap();
            assert_eq!(Date::from_ordinal(d.to_ordinal()).unwrap(), d, "{s}");
        }
    }

    #[test]
    fn ordinal_is_monotonic() {
        let a = Date::parse("12-31-79").unwrap();
        let b = Date::parse("1-1-80").unwrap();
        assert_eq!(a.to_ordinal() + 1, b.to_ordinal());
    }
}
