//! Runtime datum type with SQL three-valued comparison semantics.

use crate::date::Date;
use crate::error::TypeError;
use crate::schema::ColumnType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL value.
///
/// Two comparison regimes coexist:
///
/// * [`Value::sql_cmp`] — SQL semantics: comparing with `NULL` yields `None`
///   (*unknown*), and incompatible types are an error. `WHERE` predicates use
///   this.
/// * [`Value::total_cmp`] — a total order placing `NULL` first, used by sort
///   operators, duplicate elimination, and `GROUP BY` (where SQL treats
///   `NULL`s as one group).
#[derive(Debug, Clone)]
pub enum Value {
    /// The SQL null value (the paper's `^` padding from outer joins).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Variable-length string.
    Str(String),
    /// Calendar date.
    Date(Date),
    /// Boolean (used internally; the dialect has no boolean columns).
    Bool(bool),
}

impl Value {
    /// String value helper.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Parse a date literal into a value.
    pub fn date(s: &str) -> Result<Value, TypeError> {
        Ok(Value::Date(Date::parse(s)?))
    }

    /// Whether this value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`ColumnType`] this value inhabits, or `None` for `NULL`.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Date(_) => Some(ColumnType::Date),
            Value::Bool(_) => Some(ColumnType::Bool),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Date(_) => "date",
            Value::Bool(_) => "bool",
        }
    }

    /// SQL three-valued comparison.
    ///
    /// Returns `Ok(None)` when either side is `NULL` (the comparison is
    /// *unknown*), `Ok(Some(ordering))` for comparable non-null values, and
    /// `Err` for a type mismatch (e.g. comparing a string with a date).
    /// Integers and floats compare numerically across types.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>, TypeError> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(None),
            (Int(a), Int(b)) => Ok(Some(a.cmp(b))),
            (Float(a), Float(b)) => Ok(Some(cmp_f64(*a, *b))),
            (Int(a), Float(b)) => Ok(Some(cmp_f64(*a as f64, *b))),
            (Float(a), Int(b)) => Ok(Some(cmp_f64(*a, *b as f64))),
            (Str(a), Str(b)) => Ok(Some(a.cmp(b))),
            (Date(a), Date(b)) => Ok(Some(a.cmp(b))),
            (Bool(a), Bool(b)) => Ok(Some(a.cmp(b))),
            (a, b) => Err(TypeError::Incomparable(
                a.type_name().to_string(),
                b.type_name().to_string(),
            )),
        }
    }

    /// SQL equality under three-valued logic: `None` if either side is null.
    pub fn sql_eq(&self, other: &Value) -> Result<Option<bool>, TypeError> {
        Ok(self.sql_cmp(other)?.map(|o| o == Ordering::Equal))
    }

    /// Total order for sorting and grouping: `NULL` sorts first; values of
    /// different non-null types order by a fixed type rank (this situation
    /// does not arise in well-typed plans but keeps sorting total).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            _ => match self.sql_cmp(other) {
                Ok(Some(o)) => o,
                _ => self.type_rank().cmp(&other.type_rank()),
            },
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numeric tower shares a rank
            Value::Date(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Numeric view for arithmetic aggregates (`SUM`, `AVG`).
    pub fn as_f64(&self) -> Result<f64, TypeError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            v => Err(TypeError::BadOperand(format!(
                "expected numeric value, got {}",
                v.type_name()
            ))),
        }
    }

    /// Approximate on-disk width in bytes; drives tuples-per-page in the
    /// storage simulator so that relation page counts behave realistically.
    pub fn storage_width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len(),
            Value::Date(_) => 4,
            Value::Bool(_) => 1,
        }
    }
}

/// Total comparison of floats: NaN sorts last and equals itself, so that
/// sorting and grouping remain well-defined even for degenerate data.
fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => unreachable!("partial_cmp only fails on NaN"),
    })
}

/// `PartialEq` follows the *total* order (grouping semantics), not SQL
/// three-valued equality: `Null == Null` is `true` here. Use
/// [`Value::sql_eq`] inside predicate evaluation.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash alike when numerically equal, since
            // they compare equal; hash the f64 bits of the numeric value
            // (integers beyond 2^53 lose distinction, acceptable for the
            // grouping keys this engine sees).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                let norm = if f.is_nan() { f64::NAN } else { *f };
                norm.to_bits().hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v.into())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null).unwrap(), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null).unwrap(), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incompatible_types_error() {
        assert!(Value::str("a").sql_cmp(&Value::Int(1)).is_err());
        assert!(Value::date("1-1-80").unwrap().sql_cmp(&Value::str("x")).is_err());
    }

    #[test]
    fn total_order_puts_null_first() {
        let mut v = vec![Value::Int(2), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn grouping_equality_treats_nulls_as_equal() {
        // GROUP BY places all NULLs in one group — PartialEq must agree.
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn int_float_hash_consistency() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn date_values_compare_chronologically() {
        let early = Value::date("7-3-79").unwrap();
        let late = Value::date("1-1-80").unwrap();
        assert_eq!(early.sql_cmp(&late).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("S1").to_string(), "S1");
        assert_eq!(Value::date("7-3-79").unwrap().to_string(), "1979-07-03");
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }
}
