//! Tuples: ordered lists of values.

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A row of values. Wraps `Vec<Value>` with relational helpers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field at `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Concatenate two tuples (join output).
    pub fn join(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Concatenate with `n` trailing `NULL`s (outer-join padding, the
    /// paper's `^` symbol).
    pub fn join_nulls(&self, n: usize) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + n);
        values.extend_from_slice(&self.values);
        values.resize(values.len() + n, Value::Null);
        Tuple::new(values)
    }

    /// Project onto the given field indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Compare two tuples field-wise on the given key indices using the
    /// total order (sort semantics: `NULL` first).
    pub fn key_cmp(&self, other: &Tuple, keys: &[usize]) -> Ordering {
        for &k in keys {
            let o = self.values[k].total_cmp(&other.values[k]);
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }

    /// Full-tuple total-order comparison (used by DISTINCT and result
    /// canonicalisation in tests).
    pub fn total_cmp(&self, other: &Tuple) -> Ordering {
        let n = self.values.len().min(other.values.len());
        for i in 0..n {
            let o = self.values[i].total_cmp(&other.values[i]);
            if o != Ordering::Equal {
                return o;
            }
        }
        self.values.len().cmp(&other.values.len())
    }

    /// Approximate storage footprint in bytes (see
    /// [`Value::storage_width`]); drives the page-capacity computation in
    /// the storage simulator.
    pub fn storage_width(&self) -> usize {
        2 + self.values.iter().map(Value::storage_width).sum::<usize>()
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(Value::to_string).collect();
        write!(f, "({})", parts.join(", "))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn join_concatenates() {
        assert_eq!(t(&[1, 2]).join(&t(&[3])), t(&[1, 2, 3]));
    }

    #[test]
    fn join_nulls_pads() {
        let j = t(&[1]).join_nulls(2);
        assert_eq!(j.values(), &[Value::Int(1), Value::Null, Value::Null]);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        assert_eq!(t(&[10, 20, 30]).project(&[2, 0, 0]), t(&[30, 10, 10]));
    }

    #[test]
    fn key_cmp_respects_key_order() {
        let a = t(&[1, 9]);
        let b = t(&[2, 0]);
        assert_eq!(a.key_cmp(&b, &[0]), Ordering::Less);
        assert_eq!(a.key_cmp(&b, &[1]), Ordering::Greater);
        assert_eq!(a.key_cmp(&b, &[]), Ordering::Equal);
    }

    #[test]
    fn total_cmp_is_lexicographic() {
        assert_eq!(t(&[1, 2]).total_cmp(&t(&[1, 3])), Ordering::Less);
        assert_eq!(t(&[1]).total_cmp(&t(&[1, 0])), Ordering::Less);
    }

    #[test]
    fn storage_width_counts_fields() {
        let tup = Tuple::new(vec![Value::Int(1), Value::str("abc")]);
        assert_eq!(tup.storage_width(), 2 + 8 + 5);
    }
}
