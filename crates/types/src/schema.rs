//! Column and schema descriptions, with qualified-name resolution.

use crate::error::TypeError;
use std::fmt;

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string.
    Str,
    /// Calendar date.
    Date,
    /// Boolean (internal).
    Bool,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "STRING",
            ColumnType::Date => "DATE",
            ColumnType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// One column of a schema: an optional table qualifier plus a name.
///
/// Qualifiers matter once joins concatenate schemas: after joining `PARTS`
/// with `SUPPLY`, both sides carry a `PNUM` column and only the qualifier
/// disambiguates them — exactly the situation in every transformed query in
/// the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Table name or alias this column belongs to, if known.
    pub table: Option<String>,
    /// Column name (stored uppercase; lookups are case-insensitive).
    pub name: String,
    /// Static type.
    pub ty: ColumnType,
}

impl Column {
    /// New unqualified column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column { table: None, name: name.into().to_ascii_uppercase(), ty }
    }

    /// New qualified column.
    pub fn qualified(table: impl Into<String>, name: impl Into<String>, ty: ColumnType) -> Column {
        Column {
            table: Some(table.into().to_ascii_uppercase()),
            name: name.into().to_ascii_uppercase(),
            ty,
        }
    }

    /// `TABLE.NAME` or bare `NAME`.
    pub fn qualified_name(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered list of columns describing tuple layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs, all qualified by
    /// `table`.
    pub fn of_table(table: &str, cols: &[(&str, ColumnType)]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Column::qualified(table, *n, *t))
                .collect(),
        )
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve a possibly-qualified column reference to its index.
    ///
    /// `table` of `None` matches any qualifier but errs on ambiguity;
    /// matching is case-insensitive. This is the single resolution routine
    /// used by the analyzer, the executor, and the transformations, so all
    /// layers agree on scoping behaviour.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize, TypeError> {
        let name = name.to_ascii_uppercase();
        let table = table.map(str::to_ascii_uppercase);
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name != name {
                continue;
            }
            if let Some(t) = &table {
                if c.table.as_deref() != Some(t.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                let shown = match &table {
                    Some(t) => format!("{t}.{name}"),
                    None => name,
                };
                return Err(TypeError::AmbiguousColumn(shown));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            let shown = match &table {
                Some(t) => format!("{t}.{name}"),
                None => name,
            };
            TypeError::UnknownColumn(shown)
        })
    }

    /// Column index if the reference resolves, without error details.
    pub fn try_resolve(&self, table: Option<&str>, name: &str) -> Option<usize> {
        self.resolve(table, name).ok()
    }

    /// Concatenate two schemas (join output layout).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }

    /// A new schema with every column re-qualified to `table` (used when a
    /// subquery result or temporary table is given a name).
    pub fn requalify(&self, table: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Column::qualified(table, &c.name, c.ty))
                .collect(),
        )
    }

    /// Project the schema onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{}:{}", c.qualified_name(), c.ty))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts_supply_joined() -> Schema {
        Schema::of_table("PARTS", &[("PNUM", ColumnType::Int), ("QOH", ColumnType::Int)]).join(
            &Schema::of_table(
                "SUPPLY",
                &[
                    ("PNUM", ColumnType::Int),
                    ("QUAN", ColumnType::Int),
                    ("SHIPDATE", ColumnType::Date),
                ],
            ),
        )
    }

    #[test]
    fn resolves_unique_unqualified_name() {
        let s = parts_supply_joined();
        assert_eq!(s.resolve(None, "QOH").unwrap(), 1);
        assert_eq!(s.resolve(None, "shipdate").unwrap(), 4);
    }

    #[test]
    fn ambiguous_unqualified_name_errors() {
        let s = parts_supply_joined();
        assert!(matches!(
            s.resolve(None, "PNUM"),
            Err(TypeError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn qualifier_disambiguates() {
        let s = parts_supply_joined();
        assert_eq!(s.resolve(Some("PARTS"), "PNUM").unwrap(), 0);
        assert_eq!(s.resolve(Some("SUPPLY"), "PNUM").unwrap(), 2);
        assert_eq!(s.resolve(Some("supply"), "pnum").unwrap(), 2);
    }

    #[test]
    fn unknown_column_errors() {
        let s = parts_supply_joined();
        assert!(matches!(
            s.resolve(None, "NOPE"),
            Err(TypeError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.resolve(Some("PARTS"), "QUAN"),
            Err(TypeError::UnknownColumn(_))
        ));
    }

    #[test]
    fn requalify_renames_all_tables() {
        let s = parts_supply_joined().requalify("TEMP3");
        assert!(s.columns().iter().all(|c| c.table.as_deref() == Some("TEMP3")));
        // After requalification the duplicate PNUMs collide even qualified.
        assert!(s.resolve(Some("TEMP3"), "PNUM").is_err());
    }

    #[test]
    fn project_selects_indices() {
        let s = parts_supply_joined().project(&[0, 4]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.columns()[1].name, "SHIPDATE");
    }
}
