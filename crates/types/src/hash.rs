//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and DoS-resistant
//! but costs tens of cycles per word — measurable on the engine's hot maps
//! (hash-join build tables, `GROUP BY` indexes, the buffer pool's page map),
//! which hash short keys millions of times per query and never face
//! adversarial input. This module provides an FxHash-style multiply-xor
//! hasher (the rustc/Firefox design): one wrapping multiply per word, no
//! key, fully deterministic across runs and platforms.
//!
//! Determinism matters beyond speed: iteration-order-independent structures
//! built on these maps behave identically run-to-run, which keeps the
//! repo's byte-identical page-I/O accounting reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-xor hasher (FxHash-style).
///
/// Each written word is folded in as `hash = (hash rotl 5 ^ word) * K` with
/// a single odd multiplicative constant (derived from the golden ratio, as
/// in rustc's `FxHasher`). Not cryptographic; do not use for untrusted keys.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold in the tail length so "ab" + "" and "a" + "b" differ.
            word[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = hash_of(&("key", 42u64));
        let b = hash_of(&("key", 42u64));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        assert_ne!(hash_of(&"a"), hash_of(&"ab"));
    }

    #[test]
    fn tail_bytes_are_length_disambiguated() {
        // Same leading bytes, different tail lengths, must not collide via
        // zero-padding alone.
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefgh\x00");
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefgh");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn int_float_value_hash_consistency_survives_fx() {
        // The engine's grouping invariant: values that compare equal must
        // hash equal under any hasher, including this one.
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_eq!(hash_of(&Value::Null), hash_of(&Value::Null));
    }

    #[test]
    fn map_works_with_tuple_keys() {
        let mut m: FxHashMap<crate::Tuple, usize> = FxHashMap::default();
        let t1 = crate::Tuple::new(vec![Value::Int(1), Value::str("x")]);
        let t2 = crate::Tuple::new(vec![Value::Int(1), Value::str("y")]);
        m.insert(t1.clone(), 1);
        m.insert(t2, 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&t1], 1);
    }
}
