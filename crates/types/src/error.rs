//! Error type for value- and schema-level failures.

use std::fmt;

/// Errors arising from value coercion, schema lookup, or literal parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two values of incompatible types were compared or combined.
    Incomparable(String, String),
    /// A column name did not resolve to any column in the schema.
    UnknownColumn(String),
    /// A column name resolved to more than one column.
    AmbiguousColumn(String),
    /// A date literal could not be parsed.
    BadDate(String),
    /// An arithmetic or aggregate operation received an unsupported type.
    BadOperand(String),
    /// Tuple arity does not match the schema arity.
    ArityMismatch {
        /// Columns in the schema.
        schema: usize,
        /// Fields in the offending tuple.
        tuple: usize,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Incomparable(a, b) => {
                write!(f, "cannot compare values of type {a} and {b}")
            }
            TypeError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            TypeError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            TypeError::BadDate(s) => write!(f, "cannot parse date literal: {s:?}"),
            TypeError::BadOperand(s) => write!(f, "bad operand: {s}"),
            TypeError::ArityMismatch { schema, tuple } => {
                write!(f, "tuple arity {tuple} does not match schema arity {schema}")
            }
        }
    }
}

impl std::error::Error for TypeError {}
