#![warn(missing_docs)]

//! Value, schema, tuple, and relation types shared by every layer of the
//! `nested-query-opt` workspace.
//!
//! This crate is the bottom of the dependency stack. It defines:
//!
//! * [`Value`] — the runtime datum type, with SQL three-valued comparison
//!   semantics (`NULL` compares as *unknown*) and a separate total order used
//!   for sorting and grouping.
//! * [`Date`] — a calendar date type able to parse the paper's literal forms
//!   (`1-1-80`, `8/14/77`, `1979-07-03`).
//! * [`Schema`] / [`Column`] / [`ColumnType`] — tuple layout descriptions
//!   with optional table qualifiers, supporting the qualified-name resolution
//!   that correlated subqueries require.
//! * [`Tuple`] and [`Relation`] — in-memory rows and tables, including the
//!   pretty-printer used to render the paper's example tables and the
//!   multiset comparison used by the equivalence test oracles.
//!
//! The semantics here deliberately mirror System R-era SQL as the paper
//! assumes it: aggregates ignore `NULL`s, `MAX` of an empty set is `NULL`,
//! `COUNT` never returns `NULL`, and `WHERE` keeps only rows whose predicate
//! is *true* (not merely non-false).

pub mod date;
pub mod error;
pub mod hash;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use date::Date;
pub use error::TypeError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use relation::Relation;
pub use schema::{Column, ColumnType, Schema};
pub use tuple::Tuple;
pub use value::Value;

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, TypeError>;
