#![warn(missing_docs)]

//! Cross-query result cache for nested-query evaluation.
//!
//! NEST-JA2's whole point is materializing an aggregate temp — but without a
//! cache that work is thrown away after every statement. This crate keeps two
//! kinds of entries alive across queries:
//!
//! * [`TempEntry`] — a transform-phase temporary table (the NEST-JA2
//!   `TEMP(G, agg)` and its step-1/2 inputs), keyed on the *inlined* logical
//!   plan text, an options fingerprint, the generation stamp of every base
//!   table the plan reads, and the owning catalog's epoch. Each entry also
//!   carries the recorded counted-I/O event sequence of its original
//!   materialization, so a hit can *replay* the exact page-access pattern:
//!   counted I/O and buffer evolution on a hit are identical to a cold
//!   re-execution by construction.
//! * [`BlockEntry`] — an inner query block's result keyed on a normalized
//!   block signature plus the correlation-binding tuple (Guravannavar-style
//!   binding-keyed reuse), the FROM table's generation, and the epoch.
//!
//! Eviction is byte-budgeted LRU over both kinds. Invalidation is precise:
//! every DML path bumps the affected table's generation stamp (so stale
//! entries can never match) *and* proactively drops entries that read the
//! table (so the budget is returned immediately and the invalidation is
//! observable in [`CacheStats`]).
//!
//! The Cohen–Nutt-style rewrite check ([`judge_rewrite`]) decides whether a
//! cached `COUNT`/`SUM`/`AVG` view could soundly answer a structurally
//! different aggregate request — most importantly *declining* the COUNT-bug
//! sensitive cases, where the candidate view lost empty groups that the
//! requested view must preserve.

use nsql_storage::{PageId, TraceEvent};
use nsql_types::{Relation, Schema, Tuple};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Default byte budget: generous enough for the paper-scale workloads,
/// small enough that runaway workloads converge (4 MiB).
pub const DEFAULT_CACHE_BUDGET: usize = 4 << 20;

/// Approximate retained bytes of one tuple (storage width plus per-tuple
/// bookkeeping). Shared with the nested-iteration per-binding memo so both
/// budgets are measured with the same yardstick.
pub fn approx_tuple_bytes(t: &Tuple) -> usize {
    t.storage_width() + 16
}

/// Approximate retained bytes of a relation's tuples.
pub fn approx_relation_bytes(rel: &Relation) -> usize {
    rel.tuples().iter().map(approx_tuple_bytes).sum::<usize>() + 64
}

/// Snapshot of the cache's counters and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served (exact temp-set hits, derived rewrite hits, and
    /// block hits).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Rewrite candidates rejected by the soundness check (with reasons
    /// rendered into EXPLAIN at the decline site).
    pub declines: u64,
    /// Entries dropped by the byte-budget LRU.
    pub evictions: u64,
    /// Entries dropped by DML/reopen invalidation.
    pub invalidations: u64,
    /// Live entries.
    pub entries: u64,
    /// Estimated retained bytes.
    pub bytes: u64,
}

/// Semantic descriptor of an aggregate view (`TEMP(G, agg)`), deliberately
/// looser than the structural cache key: group columns and the aggregate
/// argument are reduced to unqualified names and filters to normalized
/// predicate text, and the base-table set is *not* part of the descriptor.
/// That way Kim's NEST-JA view and the NEST-JA2 view of the same query
/// become comparable — which is exactly what lets the rewrite check fire
/// (and decline) on the COUNT-bug cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggViewDescriptor {
    /// Unqualified GROUP BY column names, sorted.
    pub group_cols: Vec<String>,
    /// Aggregate function name (`COUNT`, `SUM`, …).
    pub agg_func: String,
    /// Unqualified aggregate argument column name, or `*`.
    pub agg_arg: String,
    /// Normalized restriction predicate texts, sorted.
    pub filters: Vec<String>,
    /// Whether the view preserves groups with no matching inner tuples
    /// (NEST-JA2's LEFT OUTER join does; Kim's NEST-JA does not).
    pub preserves_empty_groups: bool,
}

/// Verdict of the Cohen–Nutt-style rewrite check for answering `requested`
/// from a cached `candidate` view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteJudgement {
    /// The views are not about the same grouping/restriction — no reuse,
    /// no decline to report.
    NotComparable,
    /// The candidate could soundly answer the request.
    Sound,
    /// The views match semantically but the rewrite is unsound; the reason
    /// is rendered into EXPLAIN.
    Decline(String),
}

/// Judge whether `candidate` can soundly answer `requested`.
///
/// Comparability requires the same grouping columns and the same restriction
/// filters. Given that, the check declines:
///
/// * **COUNT-bug sensitivity** — the request needs empty groups preserved
///   (it feeds a COUNT whose empty-group value is 0, materialized via a
///   LEFT OUTER join) but the candidate dropped them (Kim's NEST-JA shape).
///   Answering from the candidate would silently lose the zero-count
///   groups: the paper's Section 3 bug, reintroduced through the cache.
/// * **AVG from SUM/COUNT** — deriving AVG by dividing cached SUM by cached
///   COUNT is rejected under the exact-float policy (the engine's AVG is
///   a single-pass computation; a derived division can differ in the last
///   ulp and break bit-identical accounting).
/// * Any other aggregate mismatch (a SUM view cannot answer MAX, etc.).
pub fn judge_rewrite(
    requested: &AggViewDescriptor,
    candidate: &AggViewDescriptor,
) -> RewriteJudgement {
    if requested.group_cols != candidate.group_cols || requested.filters != candidate.filters {
        return RewriteJudgement::NotComparable;
    }
    if requested.preserves_empty_groups && !candidate.preserves_empty_groups {
        return RewriteJudgement::Decline(format!(
            "count-bug risk: cached {}({}) view dropped empty groups the request must preserve",
            candidate.agg_func, candidate.agg_arg
        ));
    }
    if requested.agg_func == "AVG"
        && (candidate.agg_func == "SUM" || candidate.agg_func == "COUNT")
    {
        return RewriteJudgement::Decline(format!(
            "AVG({}) from cached {}({}) rejected: exact-float policy forbids derived division",
            requested.agg_arg, candidate.agg_func, candidate.agg_arg
        ));
    }
    if requested.agg_func != candidate.agg_func || requested.agg_arg != candidate.agg_arg {
        return RewriteJudgement::NotComparable;
    }
    RewriteJudgement::Sound
}

/// A cached transform-phase temporary table.
#[derive(Debug, Clone)]
pub struct TempEntry {
    /// Inlined logical-plan text: references to earlier temps are expanded
    /// to their defining plans, so the key is self-contained.
    pub text: String,
    /// Options fingerprint (join policy, index use, page geometry) — the
    /// knobs that change the materialization's physical I/O.
    pub fingerprint: String,
    /// Sorted `(base table, generation)` pairs the plan transitively reads.
    pub bases: Vec<(String, u64)>,
    /// Owning catalog epoch (bumped by `Database::open` recovery).
    pub epoch: u64,
    /// Output schema as registered (already requalified to the temp name).
    pub schema: Schema,
    /// Output pages in file order: original page id plus page contents.
    pub output_pages: Vec<(PageId, Vec<Tuple>)>,
    /// Output tuple count.
    pub tuple_count: usize,
    /// Column indexes the output is physically sorted by.
    pub sorted_by: Vec<usize>,
    /// The recorded counted-I/O event sequence of the materialization.
    pub trace: Vec<TraceEvent>,
    /// `(temp name, entry id)` of earlier temps this materialization read;
    /// a hit is sound only if those exact entries also hit this query (the
    /// replay pid map then covers every cross-temp page reference).
    pub deps: Vec<(String, u64)>,
    /// Aggregate-view descriptor, when the temp is an aggregate
    /// materialization (enables the rewrite check).
    pub view: Option<AggViewDescriptor>,
}

impl TempEntry {
    fn bytes(&self) -> usize {
        let pages: usize = self
            .output_pages
            .iter()
            .map(|(_, ts)| ts.iter().map(approx_tuple_bytes).sum::<usize>() + 32)
            .sum();
        self.text.len() + self.fingerprint.len() + pages + self.trace.len() * 24 + 128
    }

    /// Position of `pid` in the output file, if it is an output page.
    pub fn output_index(&self, pid: PageId) -> Option<usize> {
        self.output_pages.iter().position(|(p, _)| *p == pid)
    }
}

/// A cached inner-block result under one correlation binding.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// Normalized block signature (aliases canonicalized, outer references
    /// replaced by ordinal placeholders).
    pub signature: String,
    /// The correlation-binding values, in placeholder order (empty for
    /// uncorrelated blocks).
    pub binding: Tuple,
    /// The single FROM table the block scans.
    pub table: String,
    /// That table's generation stamp at publication.
    pub generation: u64,
    /// Owning catalog epoch.
    pub epoch: u64,
    /// The block's result (post SELECT phase).
    pub rel: Relation,
}

impl BlockEntry {
    fn bytes(&self) -> usize {
        self.signature.len()
            + approx_tuple_bytes(&self.binding)
            + approx_relation_bytes(&self.rel)
            + 96
    }
}

enum EntryKind {
    Temp(Arc<TempEntry>),
    Block(Arc<BlockEntry>),
}

struct Slot {
    id: u64,
    bytes: usize,
    last_used: u64,
    kind: EntryKind,
}

struct Inner {
    slots: Vec<Slot>,
    next_id: u64,
    tick: u64,
    bytes: usize,
}

/// The shared cross-query cache. Cheap to share (`Arc`), internally
/// synchronized; all counters are monotonic.
pub struct QueryCache {
    inner: Mutex<Inner>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    declines: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl QueryCache {
    /// A cache with the given byte budget.
    pub fn new(budget: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Inner { slots: Vec::new(), next_id: 1, tick: 0, bytes: 0 }),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            declines: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// A cache with the default budget.
    pub fn with_defaults() -> QueryCache {
        QueryCache::new(DEFAULT_CACHE_BUDGET)
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Find a temp entry by exact structural key. Does not touch the
    /// hit/miss counters: the transform consult is all-or-nothing across a
    /// plan's temps, so the caller reports the per-temp outcome once the
    /// whole-plan decision is made (via [`QueryCache::note_hits`] /
    /// [`QueryCache::note_misses`]).
    pub fn find_temp(
        &self,
        text: &str,
        fingerprint: &str,
        bases: &[(String, u64)],
        epoch: u64,
    ) -> Option<(u64, Arc<TempEntry>)> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        for slot in inner.slots.iter_mut() {
            if let EntryKind::Temp(e) = &slot.kind {
                if e.epoch == epoch
                    && e.text == text
                    && e.fingerprint == fingerprint
                    && e.bases == bases
                {
                    slot.last_used = tick;
                    return Some((slot.id, Arc::clone(e)));
                }
            }
        }
        None
    }

    /// Find a temp entry matching everything but the options fingerprint —
    /// the cross-policy "derived hit" the rewrite mode allows (contents are
    /// policy-independent even though the recorded I/O is not).
    pub fn find_temp_any_fingerprint(
        &self,
        text: &str,
        exclude_fingerprint: &str,
        bases: &[(String, u64)],
        epoch: u64,
    ) -> Option<(u64, Arc<TempEntry>)> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        for slot in inner.slots.iter_mut() {
            if let EntryKind::Temp(e) = &slot.kind {
                if e.epoch == epoch
                    && e.text == text
                    && e.fingerprint != exclude_fingerprint
                    && e.bases == bases
                {
                    slot.last_used = tick;
                    return Some((slot.id, Arc::clone(e)));
                }
            }
        }
        None
    }

    /// All live aggregate-view entries for `epoch` (rewrite-check
    /// candidates).
    pub fn agg_views(&self, epoch: u64) -> Vec<Arc<TempEntry>> {
        self.lock()
            .slots
            .iter()
            .filter_map(|s| match &s.kind {
                EntryKind::Temp(e) if e.epoch == epoch && e.view.is_some() => {
                    Some(Arc::clone(e))
                }
                _ => None,
            })
            .collect()
    }

    /// Publish a temp entry, evicting LRU-first down to the byte budget.
    /// Returns the entry id (used in dependents' `deps`).
    pub fn publish_temp(&self, entry: TempEntry) -> u64 {
        let bytes = entry.bytes();
        self.insert(EntryKind::Temp(Arc::new(entry)), bytes)
    }

    /// Look up an inner-block result. Bumps hit/miss counters (the block
    /// consult is a single decision point, unlike the temp-set consult).
    pub fn find_block(
        &self,
        signature: &str,
        binding: &Tuple,
        table: &str,
        generation: u64,
        epoch: u64,
    ) -> Option<Arc<BlockEntry>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        for slot in inner.slots.iter_mut() {
            if let EntryKind::Block(e) = &slot.kind {
                if e.epoch == epoch
                    && e.generation == generation
                    && e.table == table
                    && e.signature == signature
                    && &e.binding == binding
                {
                    slot.last_used = tick;
                    let hit = Arc::clone(e);
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(hit);
                }
            }
        }
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Publish an inner-block result.
    pub fn publish_block(&self, entry: BlockEntry) {
        let bytes = entry.bytes();
        self.insert(EntryKind::Block(Arc::new(entry)), bytes);
    }

    fn insert(&self, kind: EntryKind, bytes: usize) -> u64 {
        let mut inner = self.lock();
        inner.tick += 1;
        let (tick, id) = (inner.tick, inner.next_id);
        inner.next_id += 1;
        inner.bytes += bytes;
        inner.slots.push(Slot { id, bytes, last_used: tick, kind });
        let mut evicted = 0u64;
        while inner.bytes > self.budget && !inner.slots.is_empty() {
            let lru = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            let gone = inner.slots.swap_remove(lru);
            inner.bytes -= gone.bytes;
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        id
    }

    /// Drop every entry that reads `table` (temp entries via their base
    /// set, block entries via their FROM table). Called by the catalog on
    /// every DML path, so budget is returned immediately.
    pub fn invalidate_table(&self, table: &str) {
        let table = table.to_ascii_uppercase();
        let mut inner = self.lock();
        let mut dropped = 0u64;
        let mut i = 0;
        while i < inner.slots.len() {
            let stale = match &inner.slots[i].kind {
                EntryKind::Temp(e) => e.bases.iter().any(|(t, _)| *t == table),
                EntryKind::Block(e) => e.table == table,
            };
            if stale {
                let gone = inner.slots.swap_remove(i);
                inner.bytes -= gone.bytes;
                dropped += 1;
            } else {
                i += 1;
            }
        }
        drop(inner);
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Report `n` served temp hits.
    pub fn note_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Report `n` temp misses.
    pub fn note_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Report one declined rewrite.
    pub fn note_decline(&self) {
        self.declines.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            declines: self.declines.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: inner.slots.len() as u64,
            bytes: inner.bytes as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType, Schema, Value};

    fn view(preserves: bool, func: &str) -> AggViewDescriptor {
        AggViewDescriptor {
            group_cols: vec!["PNUM".into()],
            agg_func: func.into(),
            agg_arg: "SHIPDATE".into(),
            filters: vec!["SHIPDATE < DATE '1980-01-01'".into()],
            preserves_empty_groups: preserves,
        }
    }

    fn temp_entry(text: &str, fp: &str, gen: u64) -> TempEntry {
        TempEntry {
            text: text.into(),
            fingerprint: fp.into(),
            bases: vec![("SUPPLY".into(), gen)],
            epoch: 0,
            schema: Schema::new(vec![Column::new("A", ColumnType::Int)]),
            output_pages: vec![(PageId(7), vec![Tuple::new(vec![Value::Int(1)])])],
            tuple_count: 1,
            sorted_by: vec![],
            trace: vec![TraceEvent::Write(PageId(7))],
            deps: vec![],
            view: None,
        }
    }

    #[test]
    fn rewrite_check_declines_count_bug() {
        let requested = view(true, "COUNT");
        let kim = view(false, "COUNT");
        match judge_rewrite(&requested, &kim) {
            RewriteJudgement::Decline(r) => assert!(r.contains("count-bug"), "{r}"),
            other => panic!("expected decline, got {other:?}"),
        }
        // Same shape with empty groups preserved is sound.
        assert_eq!(judge_rewrite(&requested, &view(true, "COUNT")), RewriteJudgement::Sound);
    }

    #[test]
    fn rewrite_check_declines_avg_from_sum() {
        let requested = view(false, "AVG");
        match judge_rewrite(&requested, &view(false, "SUM")) {
            RewriteJudgement::Decline(r) => assert!(r.contains("exact-float"), "{r}"),
            other => panic!("expected decline, got {other:?}"),
        }
        // Different grouping is simply not comparable.
        let mut other_group = view(false, "AVG");
        other_group.group_cols = vec!["QOH".into()];
        assert_eq!(
            judge_rewrite(&requested, &other_group),
            RewriteJudgement::NotComparable
        );
    }

    #[test]
    fn generation_mismatch_never_matches() {
        let c = QueryCache::with_defaults();
        c.publish_temp(temp_entry("Scan SUPPLY", "fp", 1));
        assert!(c.find_temp("Scan SUPPLY", "fp", &[("SUPPLY".into(), 1)], 0).is_some());
        assert!(c.find_temp("Scan SUPPLY", "fp", &[("SUPPLY".into(), 2)], 0).is_none());
        assert!(c.find_temp("Scan SUPPLY", "fp", &[("SUPPLY".into(), 1)], 1).is_none());
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let c = QueryCache::new(600);
        c.publish_temp(temp_entry("plan A", "fp", 1));
        c.publish_temp(temp_entry("plan B", "fp", 1));
        // Touch A so B is the LRU victim when C overflows the budget.
        let _ = c.find_temp("plan A", "fp", &[("SUPPLY".into(), 1)], 0);
        c.publish_temp(temp_entry("plan C", "fp", 1));
        let stats = c.stats();
        assert!(stats.evictions > 0, "600-byte budget must evict: {stats:?}");
        assert!(stats.bytes <= 600, "budget respected: {stats:?}");
        assert!(
            c.find_temp("plan B", "fp", &[("SUPPLY".into(), 1)], 0).is_none(),
            "LRU entry was the victim"
        );
    }

    #[test]
    fn invalidation_drops_matching_tables_only() {
        let c = QueryCache::with_defaults();
        c.publish_temp(temp_entry("plan A", "fp", 1));
        let mut other = temp_entry("plan B", "fp", 1);
        other.bases = vec![("PARTS".into(), 1)];
        c.publish_temp(other);
        c.invalidate_table("SUPPLY");
        let stats = c.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 1);
        assert!(c.find_temp("plan B", "fp", &[("PARTS".into(), 1)], 0).is_some());
    }

    #[test]
    fn block_entries_key_on_binding_and_generation() {
        let c = QueryCache::with_defaults();
        let rel = Relation::empty(Schema::new(vec![Column::new("A", ColumnType::Int)]));
        c.publish_block(BlockEntry {
            signature: "sig".into(),
            binding: Tuple::new(vec![Value::Int(3)]),
            table: "SUPPLY".into(),
            generation: 1,
            epoch: 0,
            rel,
        });
        let b3 = Tuple::new(vec![Value::Int(3)]);
        let b4 = Tuple::new(vec![Value::Int(4)]);
        assert!(c.find_block("sig", &b3, "SUPPLY", 1, 0).is_some());
        assert!(c.find_block("sig", &b4, "SUPPLY", 1, 0).is_none());
        assert!(c.find_block("sig", &b3, "SUPPLY", 2, 0).is_none(), "stale generation");
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }
}
