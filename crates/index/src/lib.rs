#![warn(missing_docs)]

//! Bulk-loaded B+tree indexes over the paged storage engine.
//!
//! The paper's cost model (Section 7) prices access paths in page I/Os;
//! until now every path was a full scan. This crate adds the classic
//! alternative: a B+tree on one column, built bottom-up from a heap file,
//! whose probes read `height` internal pages plus only the leaf pages that
//! hold matching keys. All reads go through the counted buffer pool, so an
//! index path shows up in the same I/O accounting as every other operator.
//!
//! Design notes, in the spirit of the engine's "pages of decoded tuples"
//! storage model:
//!
//! * The index is **immutable and bulk-loaded**, like heap files: base
//!   tables are rebuilt on INSERT, and their indexes with them. Leaves are
//!   pages of full tuples sorted by the key column (a clustered copy), so
//!   an index scan needs no base-table lookups.
//! * Internal nodes are pages of `(separator, child)` tuples where the
//!   separator is the minimum key of the child subtree and the child is an
//!   ordinal into the next level. Page ids per level are index metadata —
//!   persisted with the catalog, never scanned.
//! * Tuples whose key is NULL are **excluded**: no SQL comparison
//!   predicate (`= < ≤ > ≥`) is ever true of NULL, so an index path over
//!   `key ⟨op⟩ literal` predicates loses nothing. `IndexStats` records how
//!   many rows were excluded so planners can reason about `IS NULL`.
//! * [`IndexStats`] carries tuple/page/height/distinct-key counts and the
//!   key range, so cost estimation is **zero-I/O** — mirroring how the
//!   Section-7 formulas work from `Pk`/`Nk` alone.

use nsql_storage::durable::codec::{self, ByteReader, ByteWriter};
use nsql_storage::{HeapFile, PageId, Storage, StorageError};
use nsql_types::{Schema, Tuple, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// One end of a key range.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyBound {
    /// No bound on this end.
    Unbounded,
    /// Inclusive bound.
    Incl(Value),
    /// Exclusive bound.
    Excl(Value),
}

impl KeyBound {
    fn admits_low(&self, key: &Value) -> bool {
        match self {
            KeyBound::Unbounded => true,
            KeyBound::Incl(v) => key.total_cmp(v) != Ordering::Less,
            KeyBound::Excl(v) => key.total_cmp(v) == Ordering::Greater,
        }
    }

    fn admits_high(&self, key: &Value) -> bool {
        match self {
            KeyBound::Unbounded => true,
            KeyBound::Incl(v) => key.total_cmp(v) != Ordering::Greater,
            KeyBound::Excl(v) => key.total_cmp(v) == Ordering::Less,
        }
    }
}

/// Zero-I/O statistics of one index, for cost estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Indexed tuples (NULL-key rows excluded).
    pub tuples: usize,
    /// Rows of the base file excluded for a NULL key.
    pub null_keys: usize,
    /// Distinct key values.
    pub distinct_keys: usize,
    /// Number of leaf pages.
    pub leaf_pages: usize,
    /// Tree height: internal levels read per probe (0 for a 1-leaf tree).
    pub height: usize,
    /// Minimum key, when any tuple is indexed.
    pub min_key: Option<Value>,
    /// Maximum key, when any tuple is indexed.
    pub max_key: Option<Value>,
}

/// An immutable, bulk-loaded B+tree on one column of a stored relation.
#[derive(Clone)]
pub struct BTreeIndex {
    name: String,
    key_col: usize,
    schema: Schema,
    /// Leaf page ids in key order.
    leaves: Arc<Vec<PageId>>,
    /// Internal levels, root level last; `levels[0]` points at leaves.
    levels: Arc<Vec<Vec<PageId>>>,
    stats: IndexStats,
}

impl BTreeIndex {
    /// Build an index named `name` on column `key_col` of `file`,
    /// bulk-loading bottom-up. Costs one page read per base page and one
    /// write per index page.
    pub fn build(storage: &Storage, name: &str, key_col: usize, file: &HeapFile) -> BTreeIndex {
        assert!(key_col < file.schema().arity(), "key column out of range");
        let mut entries: Vec<Tuple> = Vec::with_capacity(file.tuple_count());
        let mut null_keys = 0usize;
        for t in file.scan(storage) {
            if t.get(key_col).is_null() {
                null_keys += 1;
            } else {
                entries.push(t);
            }
        }
        entries.sort_by(|a, b| {
            a.get(key_col).total_cmp(b.get(key_col)).then_with(|| a.total_cmp(b))
        });
        let distinct_keys = entries
            .windows(2)
            .filter(|w| w[0].get(key_col).total_cmp(w[1].get(key_col)) != Ordering::Equal)
            .count()
            + usize::from(!entries.is_empty());
        let min_key = entries.first().map(|t| t.get(key_col).clone());
        let max_key = entries.last().map(|t| t.get(key_col).clone());
        let tuples = entries.len();

        // Leaves: budget-packed pages of sorted tuples, exactly like a
        // heap file build.
        let budget = storage.page_size();
        let mut leaves = Vec::new();
        let mut first_keys: Vec<Value> = Vec::new();
        let mut current: Vec<Tuple> = Vec::new();
        let mut used = 0usize;
        for t in entries {
            let w = t.storage_width();
            if !current.is_empty() && used + w > budget {
                first_keys.push(current[0].get(key_col).clone());
                leaves.push(storage.write_new_page(std::mem::take(&mut current)));
                used = 0;
            }
            used += w;
            current.push(t);
        }
        if !current.is_empty() {
            first_keys.push(current[0].get(key_col).clone());
            leaves.push(storage.write_new_page(current));
        }

        // Internal levels: (separator = min key of child, child ordinal),
        // built until one root page remains. Fanout is page-budget driven
        // but at least 2, so each level strictly shrinks.
        let mut levels: Vec<Vec<PageId>> = Vec::new();
        let mut level_keys = first_keys;
        while level_keys.len() > 1 {
            let mut pages = Vec::new();
            let mut next_keys = Vec::new();
            let mut node: Vec<Tuple> = Vec::new();
            let mut used = 0usize;
            for (child, key) in level_keys.iter().enumerate() {
                let t = Tuple::new(vec![key.clone(), Value::Int(child as i64)]);
                let w = t.storage_width();
                if node.len() >= 2 && used + w > budget {
                    next_keys.push(node[0].get(0).clone());
                    pages.push(storage.write_new_page(std::mem::take(&mut node)));
                    used = 0;
                }
                used += w;
                node.push(t);
            }
            if !node.is_empty() {
                next_keys.push(node[0].get(0).clone());
                pages.push(storage.write_new_page(node));
            }
            levels.push(pages);
            level_keys = next_keys;
        }

        let stats = IndexStats {
            tuples,
            null_keys,
            distinct_keys,
            leaf_pages: leaves.len(),
            height: levels.len(),
            min_key,
            max_key,
        };
        BTreeIndex {
            name: name.to_string(),
            key_col,
            schema: file.schema().clone(),
            leaves: Arc::new(leaves),
            levels: Arc::new(levels),
            stats,
        }
    }

    /// The index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The indexed column (position in the base schema).
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// The base-table schema the leaves carry.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Zero-I/O statistics for costing.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Total pages this index occupies (leaves + internal nodes).
    pub fn page_count(&self) -> usize {
        self.leaves.len() + self.levels.iter().map(Vec::len).sum::<usize>()
    }

    /// Free every index page.
    pub fn drop_pages(&self, storage: &Storage) {
        for &id in self.leaves.iter() {
            storage.free_page(id);
        }
        for level in self.levels.iter() {
            for &id in level {
                storage.free_page(id);
            }
        }
    }

    /// Estimated fraction of indexed tuples a range selects, from the
    /// min/max key span under a uniform assumption. Equality selects
    /// `1/distinct_keys`. Conservative (never 0 on a nonempty index).
    pub fn est_selectivity(&self, lo: &KeyBound, hi: &KeyBound) -> f64 {
        if self.stats.tuples == 0 {
            return 0.0;
        }
        if let (KeyBound::Incl(a), KeyBound::Incl(b)) = (lo, hi) {
            if a.total_cmp(b) == Ordering::Equal {
                return 1.0 / self.stats.distinct_keys.max(1) as f64;
            }
        }
        let span = |v: &Value| -> Option<f64> {
            let (min, max) = (self.stats.min_key.as_ref()?, self.stats.max_key.as_ref()?);
            let (min, max, v) = match (min, max, v) {
                (Value::Int(a), Value::Int(b), Value::Int(x)) => {
                    (*a as f64, *b as f64, *x as f64)
                }
                (Value::Float(a), Value::Float(b), Value::Float(x)) => (*a, *b, *x),
                (Value::Int(a), Value::Int(b), Value::Float(x)) => (*a as f64, *b as f64, *x),
                (Value::Float(a), Value::Float(b), Value::Int(x)) => (*a, *b, *x as f64),
                _ => return None,
            };
            if max <= min {
                return Some(0.5);
            }
            Some(((v - min) / (max - min)).clamp(0.0, 1.0))
        };
        let lo_frac = match lo {
            KeyBound::Unbounded => 0.0,
            KeyBound::Incl(v) | KeyBound::Excl(v) => span(v).unwrap_or(0.3),
        };
        let hi_frac = match hi {
            KeyBound::Unbounded => 1.0,
            KeyBound::Incl(v) | KeyBound::Excl(v) => span(v).unwrap_or(0.7),
        };
        (hi_frac - lo_frac).clamp(1.0 / self.stats.tuples as f64, 1.0)
    }

    /// Scan all tuples whose key lies in `[lo, hi]` (per the bound kinds),
    /// in key order. Reads `height` internal pages plus the touched leaves
    /// through the counted buffer pool.
    pub fn range_scan(&self, storage: &Storage, lo: &KeyBound, hi: &KeyBound) -> Vec<Tuple> {
        let mut out = Vec::new();
        if self.leaves.is_empty() {
            return out;
        }
        let mut leaf = self.descend(storage, lo);
        'leaves: while leaf < self.leaves.len() {
            let page = storage.read_page(self.leaves[leaf]);
            for t in page.tuples() {
                let key = t.get(self.key_col);
                if !hi.admits_high(key) {
                    break 'leaves;
                }
                if lo.admits_low(key) {
                    out.push(t.clone());
                }
            }
            leaf += 1;
        }
        out
    }

    /// All tuples whose key equals `key` (none for NULL, by SQL
    /// comparison semantics).
    pub fn probe_eq(&self, storage: &Storage, key: &Value) -> Vec<Tuple> {
        if key.is_null() {
            return Vec::new();
        }
        let b = KeyBound::Incl(key.clone());
        self.range_scan(storage, &b, &b)
    }

    /// Descend from the root to the ordinal of the first leaf that can
    /// contain a key admitted by `lo`: at each internal node, follow the
    /// last child whose separator is strictly below the bound (duplicates
    /// of the bound key may extend into the preceding leaf).
    fn descend(&self, storage: &Storage, lo: &KeyBound) -> usize {
        let probe = match lo {
            KeyBound::Unbounded => return 0,
            KeyBound::Incl(v) | KeyBound::Excl(v) => v,
        };
        let mut ordinal = 0usize;
        for level in self.levels.iter().rev() {
            let page = storage.read_page(level[ordinal]);
            let entries = page.tuples();
            let mut chosen = 0usize;
            for e in entries {
                if e.get(0).total_cmp(probe) == Ordering::Less {
                    chosen = match e.get(1) {
                        Value::Int(c) => *c as usize,
                        other => unreachable!("internal child pointer is Int, got {other:?}"),
                    };
                } else {
                    break;
                }
            }
            if chosen == 0 {
                // Every separator ≥ probe: take the first child.
                chosen = match entries[0].get(1) {
                    Value::Int(c) => *c as usize,
                    other => unreachable!("internal child pointer is Int, got {other:?}"),
                };
            }
            ordinal = chosen;
        }
        ordinal
    }

    // ------------------------------------------------------------ persistence

    /// Serialize the index metadata (not the pages — those live in the
    /// store) for the catalog snapshot.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        w.put_u64(self.key_col as u64);
        codec::put_schema(w, &self.schema);
        w.put_u64(self.leaves.len() as u64);
        for id in self.leaves.iter() {
            w.put_u64(id.0);
        }
        w.put_u64(self.levels.len() as u64);
        for level in self.levels.iter() {
            w.put_u64(level.len() as u64);
            for id in level {
                w.put_u64(id.0);
            }
        }
        w.put_u64(self.stats.tuples as u64);
        w.put_u64(self.stats.null_keys as u64);
        w.put_u64(self.stats.distinct_keys as u64);
        codec::put_value(w, &self.stats.min_key.clone().unwrap_or(Value::Null));
        codec::put_value(w, &self.stats.max_key.clone().unwrap_or(Value::Null));
    }

    /// Reconstruct an index from [`BTreeIndex::encode`] output.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<BTreeIndex, StorageError> {
        let name = r.get_str()?;
        let key_col = r.get_u64()? as usize;
        let schema = codec::get_schema(r)?;
        let n_leaves = r.get_u64()? as usize;
        let mut leaves = Vec::with_capacity(n_leaves);
        for _ in 0..n_leaves {
            leaves.push(PageId(r.get_u64()?));
        }
        let n_levels = r.get_u64()? as usize;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n = r.get_u64()? as usize;
            let mut level = Vec::with_capacity(n);
            for _ in 0..n {
                level.push(PageId(r.get_u64()?));
            }
            levels.push(level);
        }
        let tuples = r.get_u64()? as usize;
        let null_keys = r.get_u64()? as usize;
        let distinct_keys = r.get_u64()? as usize;
        let min_key = match codec::get_value(r)? {
            Value::Null => None,
            v => Some(v),
        };
        let max_key = match codec::get_value(r)? {
            Value::Null => None,
            v => Some(v),
        };
        let stats = IndexStats {
            tuples,
            null_keys,
            distinct_keys,
            leaf_pages: leaves.len(),
            height: levels.len(),
            min_key,
            max_key,
        };
        Ok(BTreeIndex {
            name,
            key_col,
            schema,
            leaves: Arc::new(leaves),
            levels: Arc::new(levels),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_testkit::Rng;
    use nsql_types::{Column, ColumnType, Relation};

    fn relation(rows: &[(i64, i64)]) -> Relation {
        let schema = Schema::new(vec![
            Column::qualified("T", "K", ColumnType::Int),
            Column::qualified("T", "V", ColumnType::Int),
        ]);
        let tuples =
            rows.iter().map(|&(k, v)| Tuple::new(vec![Value::Int(k), Value::Int(v)])).collect();
        Relation::new(schema, tuples).unwrap()
    }

    fn build(storage: &Storage, rows: &[(i64, i64)]) -> (HeapFile, BTreeIndex) {
        let file = storage.store_relation(&relation(rows));
        let ix = BTreeIndex::build(storage, "IX", 0, &file);
        (file, ix)
    }

    #[test]
    fn probe_matches_naive_filter_with_duplicates() {
        let st = Storage::new(8, 128);
        let rows: Vec<(i64, i64)> = (0..200).map(|i| (i % 17, i)).collect();
        let (_f, ix) = build(&st, &rows);
        assert!(ix.stats().height >= 1, "200 narrow rows must build a real tree");
        for k in -1..18 {
            let got: Vec<i64> = ix
                .probe_eq(&st, &Value::Int(k))
                .iter()
                .map(|t| match t.get(1) {
                    Value::Int(v) => *v,
                    _ => panic!(),
                })
                .collect();
            let mut want: Vec<i64> =
                rows.iter().filter(|r| r.0 == k).map(|r| r.1).collect();
            want.sort();
            let mut got_sorted = got.clone();
            got_sorted.sort();
            assert_eq!(got_sorted, want, "key {k}");
        }
    }

    #[test]
    fn range_scan_is_key_ordered_and_bounded() {
        let st = Storage::new(8, 128);
        let rows: Vec<(i64, i64)> = (0..150).rev().map(|i| (i, i * 10)).collect();
        let (_f, ix) = build(&st, &rows);
        let got = ix.range_scan(
            &st,
            &KeyBound::Excl(Value::Int(10)),
            &KeyBound::Incl(Value::Int(20)),
        );
        let keys: Vec<i64> = got
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(k) => *k,
                _ => panic!(),
            })
            .collect();
        assert_eq!(keys, (11..=20).collect::<Vec<_>>());
    }

    #[test]
    fn probe_io_is_height_plus_matching_leaves() {
        let st = Storage::new(8, 128);
        let rows: Vec<(i64, i64)> = (0..400).map(|i| (i, i)).collect();
        let (_f, ix) = build(&st, &rows);
        st.clear_buffer();
        st.reset_stats();
        let hit = ix.probe_eq(&st, &Value::Int(200));
        assert_eq!(hit.len(), 1);
        let reads = st.io_stats().reads as usize;
        // Unique keys: one leaf touched, plus at most one overshoot leaf.
        assert!(
            reads <= ix.stats().height + 2,
            "probe read {reads} pages, height {}",
            ix.stats().height
        );
        assert!(
            reads < ix.stats().leaf_pages,
            "a probe must not scan all {} leaves",
            ix.stats().leaf_pages
        );
    }

    #[test]
    fn null_keys_are_excluded_and_counted() {
        let st = Storage::new(8, 128);
        let schema = Schema::new(vec![
            Column::qualified("T", "K", ColumnType::Int),
            Column::qualified("T", "V", ColumnType::Int),
        ]);
        let tuples = vec![
            Tuple::new(vec![Value::Int(1), Value::Int(10)]),
            Tuple::new(vec![Value::Null, Value::Int(20)]),
            Tuple::new(vec![Value::Int(1), Value::Int(30)]),
            Tuple::new(vec![Value::Null, Value::Int(40)]),
        ];
        let rel = Relation::new(schema, tuples).unwrap();
        let file = st.store_relation(&rel);
        let ix = BTreeIndex::build(&st, "IX", 0, &file);
        assert_eq!(ix.stats().tuples, 2);
        assert_eq!(ix.stats().null_keys, 2);
        assert_eq!(ix.probe_eq(&st, &Value::Null).len(), 0);
        assert_eq!(ix.probe_eq(&st, &Value::Int(1)).len(), 2);
    }

    #[test]
    fn empty_and_single_page_trees_work() {
        let st = Storage::new(8, 512);
        let (_f, empty) = build(&st, &[]);
        assert_eq!(empty.stats().height, 0);
        assert_eq!(empty.probe_eq(&st, &Value::Int(1)).len(), 0);
        assert_eq!(
            empty.range_scan(&st, &KeyBound::Unbounded, &KeyBound::Unbounded).len(),
            0
        );

        let (_f, one) = build(&st, &[(5, 50), (3, 30)]);
        assert_eq!(one.stats().height, 0, "two rows fit one leaf");
        let all = one.range_scan(&st, &KeyBound::Unbounded, &KeyBound::Unbounded);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].get(0), &Value::Int(3), "leaf order is key order");
    }

    #[test]
    fn random_databases_agree_with_naive_filter() {
        let mut rng = Rng::from_seed(0x1dbe_a575);
        for _ in 0..40 {
            let st = Storage::new(8, 128);
            let n = rng.gen_range(0..300) as usize;
            let rows: Vec<(i64, i64)> = (0..n)
                .map(|i| (rng.gen_range(-20i64..21), i as i64))
                .collect();
            let (_f, ix) = build(&st, &rows);
            for _ in 0..8 {
                let a = Value::Int(rng.gen_range(-25i64..26));
                let b = Value::Int(rng.gen_range(-25i64..26));
                let (lo, hi) = if a.total_cmp(&b) == Ordering::Greater {
                    (b.clone(), a.clone())
                } else {
                    (a.clone(), b.clone())
                };
                let lo_b = if rng.gen_bool(0.5) {
                    KeyBound::Incl(lo.clone())
                } else {
                    KeyBound::Excl(lo.clone())
                };
                let hi_b = if rng.gen_bool(0.5) {
                    KeyBound::Incl(hi.clone())
                } else {
                    KeyBound::Excl(hi.clone())
                };
                let got = ix.range_scan(&st, &lo_b, &hi_b);
                let want: Vec<i64> = {
                    let mut w: Vec<(i64, i64)> = rows
                        .iter()
                        .filter(|(k, _)| {
                            let kv = Value::Int(*k);
                            lo_b.admits_low(&kv) && hi_b.admits_high(&kv)
                        })
                        .cloned()
                        .collect();
                    w.sort();
                    w.iter().map(|(_, v)| *v).collect()
                };
                let mut got_vs: Vec<i64> = got
                    .iter()
                    .map(|t| match t.get(1) {
                        Value::Int(v) => *v,
                        _ => panic!(),
                    })
                    .collect();
                got_vs.sort();
                let mut want_sorted = want.clone();
                want_sorted.sort();
                assert_eq!(got_vs, want_sorted);
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_preserves_probes() {
        let st = Storage::new(8, 128);
        let rows: Vec<(i64, i64)> = (0..120).map(|i| (i % 11, i)).collect();
        let (_f, ix) = build(&st, &rows);
        let mut w = ByteWriter::new();
        ix.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = BTreeIndex::decode(&mut r).unwrap();
        assert_eq!(back.stats(), ix.stats());
        assert_eq!(back.name(), "IX");
        assert_eq!(
            back.probe_eq(&st, &Value::Int(7)).len(),
            ix.probe_eq(&st, &Value::Int(7)).len()
        );
    }

    #[test]
    fn drop_pages_releases_everything() {
        let st = Storage::new(8, 128);
        let before = st.live_pages();
        let (file, ix) = build(&st, &(0..200).map(|i| (i, i)).collect::<Vec<_>>());
        assert!(ix.page_count() > 1);
        ix.drop_pages(&st);
        file.drop_pages(&st);
        assert_eq!(st.live_pages(), before);
    }

    #[test]
    fn selectivity_estimates_are_sane() {
        let st = Storage::new(8, 128);
        let (_f, ix) = build(&st, &(0..100).map(|i| (i, i)).collect::<Vec<_>>());
        let eq = ix.est_selectivity(
            &KeyBound::Incl(Value::Int(5)),
            &KeyBound::Incl(Value::Int(5)),
        );
        assert!((eq - 0.01).abs() < 1e-9, "unique keys: equality selects 1/100, got {eq}");
        let half = ix.est_selectivity(&KeyBound::Incl(Value::Int(50)), &KeyBound::Unbounded);
        assert!((0.3..=0.7).contains(&half), "upper half ≈ 0.5, got {half}");
        let all = ix.est_selectivity(&KeyBound::Unbounded, &KeyBound::Unbounded);
        assert!((all - 1.0).abs() < 1e-9);
    }
}
