//! Columnar batch layer for vectorized execution.
//!
//! This crate is pure data representation: typed [`ColumnVector`]s with
//! validity [`Bitmap`]s, [`Batch`]es of aligned columns with [`Sel`]
//! selection vectors, and the zero-allocation [`ValRef`] value view whose
//! comparison/hash semantics mirror `nsql_types::Value` bit for bit. The
//! vectorized *operators* (filter, hash join, aggregation, the
//! nested-iteration block kernel) live in `nsql-engine`, which composes
//! these pieces; keeping the crate free of engine dependencies lets the
//! storage and engine layers both convert at their own seams.
//!
//! Invariants the kernels rely on (see DESIGN.md "Vectorized execution"):
//!
//! * batch conversion happens above the counted buffer pool — building or
//!   caching a batch never performs page I/O;
//! * a cleared validity bit is the *only* NULL carrier; payload slots under
//!   it are placeholders and must never be interpreted;
//! * [`ValRef`] ordering, equality, and hashing agree exactly with the
//!   row-side `Value` implementations (cross-checked by unit tests), so a
//!   pipeline may switch representation mid-stream without changing
//!   results.

pub mod batch;
pub mod bitmap;
pub mod column;

pub use batch::{Batch, Sel};
pub use bitmap::Bitmap;
pub use column::{ColData, ColumnVector, StrCol, ValRef, DICT_MAX};
