//! Validity bitmap: one bit per row, set = non-NULL.
//!
//! The bitmap is the 3VL carrier for columnar data: a cleared bit means the
//! slot holds SQL `NULL` and every kernel must propagate *unknown* exactly
//! as the row-at-a-time evaluator would (see DESIGN.md "Vectorized
//! execution"). Payload lanes under a cleared bit hold an arbitrary
//! placeholder and must never be interpreted.

/// A fixed-length bitmap over `len` rows, one `u64` word per 64 rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set (every row valid).
    pub fn all_valid(len: usize) -> Bitmap {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// A bitmap of `len` bits, all cleared (every row NULL).
    pub fn all_null(len: usize) -> Bitmap {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether bit `i` is set (row `i` is non-NULL).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set or clear bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if valid {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits (non-NULL rows).
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is clear — a NULL-only column.
    pub fn none_valid(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_valid() == self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_sets_exactly_len_bits() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let b = Bitmap::all_valid(len);
            assert_eq!(b.len(), len);
            assert_eq!(b.count_valid(), len, "len {len}");
            assert!(b.all_set());
        }
    }

    #[test]
    fn all_null_has_no_valid_bits() {
        let b = Bitmap::all_null(100);
        assert_eq!(b.count_valid(), 0);
        assert!(b.none_valid());
        assert!(!b.get(0));
        assert!(!b.get(99));
    }

    #[test]
    fn set_and_get_roundtrip_across_word_boundaries() {
        let mut b = Bitmap::all_null(130);
        for i in [0usize, 63, 64, 65, 127, 128, 129] {
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_valid(), 7);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_valid(), 6);
    }

    #[test]
    fn empty_bitmap_is_empty() {
        let b = Bitmap::all_valid(0);
        assert!(b.is_empty());
        assert_eq!(b.count_valid(), 0);
        assert!(b.none_valid() && b.all_set());
    }
}
