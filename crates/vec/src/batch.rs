//! Aligned column vectors plus selection vectors — the unit of vectorized
//! execution.
//!
//! A [`Batch`] holds the rows of one heap page pivoted into columns. Batch
//! conversion happens *above* the storage seam (the page is read through
//! the counted buffer pool first), so building a batch never performs or
//! hides page I/O. Predicates refine a [`Sel`] selection vector over the
//! batch instead of materializing intermediate rows; only rows that survive
//! every conjunct are converted back to tuples.

use crate::column::ColumnVector;
use nsql_types::{Tuple, Value};

/// A selection vector: row indices into a batch, ascending.
pub type Sel = Vec<u32>;

/// A fixed number of rows pivoted into aligned [`ColumnVector`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    cols: Vec<ColumnVector>,
    len: usize,
}

impl Batch {
    /// Pivot `rows` (all of the same arity) into columns.
    ///
    /// Zero-row input produces a zero-column batch: with no row to sniff an
    /// arity from there is nothing to pivot, and no kernel reads columns of
    /// an empty batch.
    pub fn from_tuples(rows: &[Tuple]) -> Batch {
        let len = rows.len();
        let arity = rows.first().map_or(0, |t| t.values().len());
        let mut cols = Vec::with_capacity(arity);
        let mut scratch: Vec<Value> = Vec::with_capacity(len);
        for c in 0..arity {
            scratch.clear();
            scratch.extend(rows.iter().map(|t| t.values()[c].clone()));
            cols.push(ColumnVector::from_values(&scratch));
        }
        Batch { cols, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column `i`.
    pub fn col(&self, i: usize) -> &ColumnVector {
        &self.cols[i]
    }

    /// A selection vector covering every row.
    pub fn full_sel(&self) -> Sel {
        (0..self.len as u32).collect()
    }

    /// Owned value at (`col`, `row`).
    pub fn value(&self, col: usize, row: usize) -> Value {
        self.cols[col].value(row)
    }

    /// Rebuild the tuple at `row`.
    pub fn tuple(&self, row: usize) -> Tuple {
        Tuple::new(self.cols.iter().map(|c| c.value(row)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vs: Vec<Value>) -> Tuple {
        Tuple::new(vs)
    }

    #[test]
    fn roundtrips_rows_through_columns() {
        let rows = vec![
            t(vec![Value::Int(1), Value::str("a"), Value::Null]),
            t(vec![Value::Int(2), Value::Null, Value::Float(0.5)]),
            t(vec![Value::Null, Value::str("b"), Value::Float(-1.0)]),
        ];
        let b = Batch::from_tuples(&rows);
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&b.tuple(i), row);
        }
    }

    #[test]
    fn empty_batch_has_no_columns_and_full_sel_is_empty() {
        let b = Batch::from_tuples(&[]);
        assert!(b.is_empty());
        assert_eq!(b.arity(), 0);
        assert!(b.full_sel().is_empty());
    }

    /// Selection vectors are per-batch: indices survive refinement chains
    /// and remain valid across the batch (page) boundary of the source rows
    /// — each batch restarts at index 0.
    #[test]
    fn selection_vectors_stay_page_local_across_batch_boundaries() {
        let page1: Vec<Tuple> = (0..5).map(|i| t(vec![Value::Int(i)])).collect();
        let page2: Vec<Tuple> = (5..9).map(|i| t(vec![Value::Int(i)])).collect();
        let (b1, b2) = (Batch::from_tuples(&page1), Batch::from_tuples(&page2));
        // Refine "x >= 3" over both batches; indices are local to each.
        let keep = |b: &Batch| -> Sel {
            b.full_sel()
                .into_iter()
                .filter(|&i| matches!(b.value(0, i as usize), Value::Int(x) if x >= 3))
                .collect()
        };
        assert_eq!(keep(&b1), vec![3, 4]);
        assert_eq!(keep(&b2), vec![0, 1, 2, 3]);
        // Gathering through the local selections yields the global rows.
        let gathered: Vec<Tuple> = keep(&b1)
            .iter()
            .map(|&i| b1.tuple(i as usize))
            .chain(keep(&b2).iter().map(|&i| b2.tuple(i as usize)))
            .collect();
        let expect: Vec<Tuple> = (3..9).map(|i| t(vec![Value::Int(i)])).collect();
        assert_eq!(gathered, expect);
    }

    #[test]
    fn null_only_rows_convert_both_ways() {
        let rows = vec![t(vec![Value::Null, Value::Null]); 4];
        let b = Batch::from_tuples(&rows);
        assert_eq!(b.arity(), 2);
        for i in 0..4 {
            assert_eq!(b.tuple(i), rows[i]);
        }
    }
}
