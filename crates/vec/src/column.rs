//! Typed column vectors and the zero-allocation value view.
//!
//! A [`ColumnVector`] is one column of a [`crate::Batch`]: a typed payload
//! array plus a validity [`Bitmap`]. Columns are built by sniffing the
//! values of one heap page, so a column that mixes non-NULL types (legal in
//! this engine — e.g. a projected literal union) falls back to the
//! [`ColData::Vals`] catch-all and all kernels still apply through
//! [`ValRef`].
//!
//! [`ValRef`] mirrors [`Value`]'s comparison/hash semantics *exactly* —
//! including `NaN == NaN`, Int/Float cross-comparison through `f64`, and
//! the `TypeError::Incomparable` type-name strings — but borrows string
//! payloads instead of cloning them. The unit tests below cross-check every
//! rule against the row-side implementation.

use crate::bitmap::Bitmap;
use nsql_types::{Date, FxHashMap, TypeError, Value};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Distinct-string cap for dictionary encoding; a page whose string column
/// exceeds this many distinct values falls back to plain storage.
pub const DICT_MAX: usize = 64;

/// String column payload: dictionary-encoded when the distinct count stays
/// under [`DICT_MAX`], plain otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum StrCol {
    /// `codes[i]` indexes into `dict`; slots under a cleared validity bit
    /// hold code 0 (or any placeholder) and are never read.
    Dict {
        /// Sorted-by-first-appearance distinct strings.
        dict: Vec<String>,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
    /// One owned string per row (placeholder empty strings under NULLs).
    Plain(Vec<String>),
}

impl StrCol {
    /// The string at row `i` (caller must have checked validity).
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        match self {
            StrCol::Dict { dict, codes } => &dict[codes[i] as usize],
            StrCol::Plain(v) => &v[i],
        }
    }

    /// Whether this column is dictionary-encoded.
    pub fn is_dict(&self) -> bool {
        matches!(self, StrCol::Dict { .. })
    }
}

/// Typed payload of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColData {
    /// All non-NULL values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-NULL values are `Value::Float`.
    Float(Vec<f64>),
    /// All non-NULL values are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-NULL values are `Value::Str`.
    Str(StrCol),
    /// All non-NULL values are `Value::Date`.
    Date(Vec<Date>),
    /// Catch-all for mixed-type or otherwise unclassifiable columns; always
    /// correct, never fast.
    Vals(Vec<Value>),
}

/// One column: typed payload plus validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVector {
    /// Typed payload; slots under cleared validity bits are placeholders.
    pub data: ColData,
    /// Set bit = non-NULL row.
    pub validity: Bitmap,
}

impl ColumnVector {
    /// Build a column from one value per row, sniffing the payload type.
    /// Mixed non-NULL types demote to [`ColData::Vals`]; string columns with
    /// more than [`DICT_MAX`] distinct values demote from dictionary to
    /// plain storage.
    pub fn from_values(vals: &[Value]) -> ColumnVector {
        let mut validity = Bitmap::all_valid(vals.len());
        let mut ty: Option<&'static str> = None;
        for (i, v) in vals.iter().enumerate() {
            match v {
                Value::Null => validity.set(i, false),
                other => {
                    let t = match other {
                        Value::Int(_) => "i",
                        Value::Float(_) => "f",
                        Value::Bool(_) => "b",
                        Value::Str(_) => "s",
                        Value::Date(_) => "d",
                        Value::Null => unreachable!(),
                    };
                    match ty {
                        None => ty = Some(t),
                        Some(prev) if prev == t => {}
                        Some(_) => {
                            // Mixed column: no typed lane applies.
                            return ColumnVector {
                                data: ColData::Vals(vals.to_vec()),
                                validity,
                            };
                        }
                    }
                }
            }
        }
        let data = match ty {
            // NULL-only (or empty) column: an Int lane whose payload is
            // never read keeps the kernels branch-free.
            None => ColData::Int(vec![0; vals.len()]),
            Some("i") => ColData::Int(
                vals.iter()
                    .map(|v| if let Value::Int(i) = v { *i } else { 0 })
                    .collect(),
            ),
            Some("f") => ColData::Float(
                vals.iter()
                    .map(|v| if let Value::Float(f) = v { *f } else { 0.0 })
                    .collect(),
            ),
            Some("b") => ColData::Bool(
                vals.iter()
                    .map(|v| matches!(v, Value::Bool(true)))
                    .collect(),
            ),
            Some("d") => {
                let placeholder = Date::new(1970, 1, 1).expect("valid placeholder date");
                ColData::Date(
                    vals.iter()
                        .map(|v| if let Value::Date(d) = v { *d } else { placeholder })
                        .collect(),
                )
            }
            Some("s") => ColData::Str(build_str_col(vals)),
            Some(_) => unreachable!("sniff tags are fixed"),
        };
        ColumnVector { data, validity }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether the column covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Borrowed view of row `i`.
    #[inline]
    pub fn val_ref(&self, i: usize) -> ValRef<'_> {
        if !self.validity.get(i) {
            return ValRef::Null;
        }
        match &self.data {
            ColData::Int(v) => ValRef::Int(v[i]),
            ColData::Float(v) => ValRef::Float(v[i]),
            ColData::Bool(v) => ValRef::Bool(v[i]),
            ColData::Str(s) => ValRef::Str(s.get(i)),
            ColData::Date(v) => ValRef::Date(v[i]),
            ColData::Vals(v) => ValRef::of(&v[i]),
        }
    }

    /// Owned [`Value`] of row `i` (clones string payloads).
    pub fn value(&self, i: usize) -> Value {
        self.val_ref(i).to_value()
    }
}

fn build_str_col(vals: &[Value]) -> StrCol {
    let mut dict: Vec<String> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(vals.len());
    let mut lookup: FxHashMap<String, u32> = FxHashMap::default();
    for v in vals {
        let s = match v {
            Value::Str(s) => s.as_str(),
            _ => {
                codes.push(0);
                continue;
            }
        };
        match lookup.get(s) {
            Some(&c) => codes.push(c),
            None => {
                if dict.len() >= DICT_MAX {
                    // Dictionary overflow: fall back to one string per row.
                    return StrCol::Plain(
                        vals.iter()
                            .map(|v| match v {
                                Value::Str(s) => s.clone(),
                                _ => String::new(),
                            })
                            .collect(),
                    );
                }
                let c = dict.len() as u32;
                dict.push(s.to_string());
                codes.push(c);
                lookup.insert(s.to_string(), c);
                continue;
            }
        }
    }
    StrCol::Dict { dict, codes }
}

/// A borrowed view of one [`Value`]: comparison and hashing without
/// allocating, with semantics bit-for-bit equal to the owned type.
#[derive(Debug, Clone, Copy)]
pub enum ValRef<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Borrowed string.
    Str(&'a str),
    /// Calendar date.
    Date(Date),
    /// Boolean.
    Bool(bool),
}

impl<'a> ValRef<'a> {
    /// View an owned value.
    #[inline]
    pub fn of(v: &'a Value) -> ValRef<'a> {
        match v {
            Value::Null => ValRef::Null,
            Value::Int(i) => ValRef::Int(*i),
            Value::Float(f) => ValRef::Float(*f),
            Value::Str(s) => ValRef::Str(s),
            Value::Date(d) => ValRef::Date(*d),
            Value::Bool(b) => ValRef::Bool(*b),
        }
    }

    /// Convert back to an owned value (clones string payloads).
    pub fn to_value(self) -> Value {
        match self {
            ValRef::Null => Value::Null,
            ValRef::Int(i) => Value::Int(i),
            ValRef::Float(f) => Value::Float(f),
            ValRef::Str(s) => Value::Str(s.to_string()),
            ValRef::Date(d) => Value::Date(d),
            ValRef::Bool(b) => Value::Bool(b),
        }
    }

    /// Whether this view is NULL.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, ValRef::Null)
    }

    fn type_name(self) -> &'static str {
        match self {
            ValRef::Null => "null",
            ValRef::Int(_) => "int",
            ValRef::Float(_) => "float",
            ValRef::Str(_) => "string",
            ValRef::Date(_) => "date",
            ValRef::Bool(_) => "bool",
        }
    }

    /// SQL three-valued comparison; mirror of [`Value::sql_cmp`].
    #[inline]
    pub fn sql_cmp(self, other: ValRef<'_>) -> Result<Option<Ordering>, TypeError> {
        use ValRef::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(None),
            (Int(a), Int(b)) => Ok(Some(a.cmp(&b))),
            (Float(a), Float(b)) => Ok(Some(cmp_f64(a, b))),
            (Int(a), Float(b)) => Ok(Some(cmp_f64(a as f64, b))),
            (Float(a), Int(b)) => Ok(Some(cmp_f64(a, b as f64))),
            (Str(a), Str(b)) => Ok(Some(a.cmp(b))),
            (Date(a), Date(b)) => Ok(Some(a.cmp(&b))),
            (Bool(a), Bool(b)) => Ok(Some(a.cmp(&b))),
            (a, b) => Err(TypeError::Incomparable(
                a.type_name().to_string(),
                b.type_name().to_string(),
            )),
        }
    }

    /// Equality under the *total* order (grouping/join-key semantics, the
    /// mirror of `Value::eq`): `NULL == NULL`, `NaN == NaN`, `3 == 3.0`,
    /// cross-type non-numeric values unequal.
    #[inline]
    pub fn total_eq(self, other: ValRef<'_>) -> bool {
        match (self.is_null(), other.is_null()) {
            (true, true) => return true,
            (true, false) | (false, true) => return false,
            (false, false) => {}
        }
        matches!(self.sql_cmp(other), Ok(Some(Ordering::Equal)))
    }

    /// Feed this value into `state` with byte-for-byte the same stream as
    /// `Value::hash`, so `total_eq` values always collide.
    #[inline]
    pub fn hash_value<H: Hasher>(self, state: &mut H) {
        match self {
            ValRef::Null => 0u8.hash(state),
            ValRef::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            ValRef::Int(i) => {
                2u8.hash(state);
                (i as f64).to_bits().hash(state);
            }
            ValRef::Float(f) => {
                2u8.hash(state);
                let norm = if f.is_nan() { f64::NAN } else { f };
                norm.to_bits().hash(state);
            }
            ValRef::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            ValRef::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// Mirror of the row side's float comparison: NaN sorts last, equals itself.
#[inline]
fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => unreachable!("partial_cmp only fails on NaN"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::FxHasher;

    fn vals(vs: &[Value]) -> ColumnVector {
        ColumnVector::from_values(vs)
    }

    #[test]
    fn sniffs_typed_lanes() {
        let c = vals(&[Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(matches!(c.data, ColData::Int(_)));
        assert_eq!(c.validity.count_valid(), 2);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        let c = vals(&[Value::Float(0.5), Value::Float(-1.0)]);
        assert!(matches!(c.data, ColData::Float(_)));
        let c = vals(&[Value::Bool(true), Value::Null]);
        assert!(matches!(c.data, ColData::Bool(_)));
    }

    #[test]
    fn mixed_types_demote_to_vals() {
        let c = vals(&[Value::Int(1), Value::str("x")]);
        assert!(matches!(c.data, ColData::Vals(_)));
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::str("x"));
    }

    #[test]
    fn null_only_column_roundtrips() {
        let c = vals(&[Value::Null, Value::Null, Value::Null]);
        assert!(c.validity.none_valid());
        for i in 0..3 {
            assert!(c.val_ref(i).is_null());
            assert_eq!(c.value(i), Value::Null);
        }
    }

    #[test]
    fn empty_column_is_empty() {
        let c = vals(&[]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn string_columns_dictionary_encode() {
        let vs: Vec<Value> =
            (0..100).map(|i| Value::str(["a", "b", "c"][i % 3])).collect();
        let c = vals(&vs);
        match &c.data {
            ColData::Str(s) => assert!(s.is_dict(), "3 distinct strings must dict-encode"),
            other => panic!("expected Str column, got {other:?}"),
        }
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(&c.value(i), v);
        }
    }

    #[test]
    fn dictionary_overflow_falls_back_to_plain() {
        let vs: Vec<Value> = (0..DICT_MAX + 10).map(|i| Value::str(format!("s{i}"))).collect();
        let c = vals(&vs);
        match &c.data {
            ColData::Str(s) => assert!(!s.is_dict(), "distinct overflow must go plain"),
            other => panic!("expected Str column, got {other:?}"),
        }
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(&c.value(i), v);
        }
    }

    #[test]
    fn dict_with_interleaved_nulls_keeps_row_alignment() {
        let vs = vec![
            Value::str("x"),
            Value::Null,
            Value::str("y"),
            Value::str("x"),
            Value::Null,
        ];
        let c = vals(&vs);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(&c.value(i), v);
        }
    }

    /// Property: ValRef::sql_cmp agrees with Value::sql_cmp on every pair
    /// drawn from a cross-type value zoo (including errors and their
    /// rendered type names).
    #[test]
    fn sql_cmp_mirrors_value_semantics() {
        let zoo = [
            Value::Null,
            Value::Int(-3),
            Value::Int(3),
            Value::Float(3.0),
            Value::Float(f64::NAN),
            Value::str("a"),
            Value::str("b"),
            Value::Bool(false),
            Value::Bool(true),
            Value::date("7-3-79").unwrap(),
        ];
        for a in &zoo {
            for b in &zoo {
                let row = a.sql_cmp(b);
                let col = ValRef::of(a).sql_cmp(ValRef::of(b));
                assert_eq!(row, col, "sql_cmp({a:?}, {b:?})");
                let row_eq = *a == *b;
                assert_eq!(row_eq, ValRef::of(a).total_eq(ValRef::of(b)), "eq({a:?}, {b:?})");
            }
        }
    }

    /// Property: hash_value produces the same stream as Value::hash, so
    /// values that compare equal across the row/vector divide hash alike.
    #[test]
    fn hash_value_matches_value_hash() {
        use std::hash::Hash;
        let zoo = [
            Value::Null,
            Value::Int(7),
            Value::Float(7.0),
            Value::Float(f64::NAN),
            Value::str("hello"),
            Value::Bool(true),
            Value::date("1-1-80").unwrap(),
        ];
        for v in &zoo {
            let mut h1 = FxHasher::default();
            v.hash(&mut h1);
            let mut h2 = FxHasher::default();
            ValRef::of(v).hash_value(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "hash divergence on {v:?}");
        }
    }
}
