#![deny(warnings)]
#![warn(missing_docs)]

//! A naive reference evaluator for the paper's SQL dialect.
//!
//! This crate is the *oracle* of the differential-testing harness
//! (`tests/diff_prop.rs`): a deliberately slow, deliberately obvious
//! tuple-at-a-time interpreter that evaluates the **original nested AST**
//! directly against in-memory [`Relation`]s. It shares no code with the
//! execution engine — no buffer pool, no operators, no transformations —
//! so a disagreement between the two is evidence of a bug in one of them.
//!
//! Semantics implemented straight from the paper's Section 2 definitions
//! and standard SQL:
//!
//! * **Three-valued logic**: comparisons against `NULL` are UNKNOWN;
//!   `WHERE` keeps a row only when its predicate is TRUE.
//! * **Correlated nesting of arbitrary depth**: inner blocks see the
//!   enclosing blocks' current bindings, nearest scope first.
//! * **All predicate forms**: `IN` (list and subquery), `EXISTS` /
//!   `NOT EXISTS`, `op ANY` / `op ALL`, scalar-subquery comparisons, and
//!   `IS [NOT] NULL`.
//! * **Aggregates** with SQL's empty-set rule: `COUNT(∅) = 0`, all other
//!   aggregates give `NULL` — the root of the paper's COUNT bug.
//! * **Exact float sums**: `SUM`/`AVG` over floats are computed as the
//!   correctly rounded sum of the exact real-number total (a Shewchuk-style
//!   non-overlapping-partials expansion), the same summation *spec* the
//!   engine implements independently — so oracle and engine float results
//!   are bit-identical, never merely ULP-close.
//!
//! What the oracle deliberately does **not** model: cost, I/O accounting,
//! buffering, sort orders, or any of the paper's transformations.
//!
//! Alongside the result, evaluation collects [`Notes`] — flags marking the
//! *documented divergence licenses* under which the paper's transformations
//! are allowed to disagree with nested-iteration semantics (see DESIGN.md
//! "Oracle semantics"). The differential harness uses them to decide which
//! equality to assert per pipeline.

use nsql_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, InRhs, Operand, OrderKey, Predicate, Quantifier,
    QueryBlock, ScalarExpr, SelectItem, SortDir,
};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, TypeError, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Failures during oracle evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// Value-level failure (incomparable types, unknown column, …).
    Type(TypeError),
    /// FROM references a table the oracle does not know.
    UnknownTable(String),
    /// Two FROM entries share an effective name.
    DuplicateTableName(String),
    /// A scalar subquery produced more than one row.
    ScalarSubqueryCardinality(usize),
    /// Integer `SUM` overflowed i64.
    SumOverflow,
    /// A query shape outside the supported dialect.
    Unsupported(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Type(e) => write!(f, "{e}"),
            OracleError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            OracleError::DuplicateTableName(t) => {
                write!(f, "duplicate table name/alias in FROM: {t}")
            }
            OracleError::ScalarSubqueryCardinality(n) => {
                write!(f, "scalar subquery returned {n} rows (expected at most 1)")
            }
            OracleError::SumOverflow => write!(f, "integer SUM overflowed i64"),
            OracleError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<TypeError> for OracleError {
    fn from(e: TypeError) -> Self {
        OracleError::Type(e)
    }
}

/// Oracle result type.
pub type Result<T> = std::result::Result<T, OracleError>;

/// Divergence licenses observed while evaluating a query against concrete
/// data. Each flag marks a *documented* reason the paper's transformations
/// may legitimately disagree with nested-iteration semantics on this
/// query/data pair; the differential harness weakens or skips the
/// corresponding comparison (see DESIGN.md "Oracle semantics").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Notes {
    /// An `ALL`-quantified comparison ran over an empty inner set or one
    /// containing NULL. The Section-8 rewrite (`x < ALL` → `x < MIN(…)`)
    /// is "logically (but not necessarily semantically) equivalent" there:
    /// `x < ALL (∅)` is TRUE while `x < NULL` is UNKNOWN, and MIN/MAX skip
    /// NULLs that make the direct form UNKNOWN.
    pub all_over_empty_or_null: bool,
    /// An inner block read a NULL value from an enclosing block's binding.
    /// When the query also nests an aggregate or EXISTS, NEST-JA2's final
    /// equality join can never match the NULL key while nested iteration
    /// gives the tuple an (empty-group) COUNT of 0 — the documented NULL
    /// outer-join-key divergence.
    pub null_outer_ref: bool,
    /// An `IN`-subquery membership test matched the same outer value more
    /// than once — the NEST-N-J duplicates condition: Kim's join form then
    /// duplicates the outer tuple, so only set-level agreement (or bag
    /// agreement after explicit deduplication) is promised.
    pub dup_in_match: bool,
}

impl Notes {
    /// Fold another evaluation's licenses into this one.
    pub fn merge(&mut self, other: Notes) {
        self.all_over_empty_or_null |= other.all_over_empty_or_null;
        self.null_outer_ref |= other.null_outer_ref;
        self.dup_in_match |= other.dup_in_match;
    }
}

// --------------------------------------------------------------- exact sums

/// Exact float accumulator: a non-overlapping expansion of partials
/// maintained with the Neumaier/Knuth two-sum error-free transform
/// (Shewchuk's grow-expansion, as used by CPython's `math.fsum`). The
/// partials represent the *exact* real sum of everything added, so
/// [`ExactSum::value`] — the correctly rounded double nearest that exact
/// sum — does not depend on insertion order or grouping.
#[derive(Debug, Clone, Default)]
struct ExactSum {
    partials: Vec<f64>,
    /// Plain sum of any non-finite inputs; ±∞/NaN dominate the result and
    /// combine associatively among themselves.
    non_finite: Option<f64>,
}

impl ExactSum {
    fn add(&mut self, mut x: f64) {
        if !x.is_finite() {
            self.non_finite = Some(self.non_finite.unwrap_or(0.0) + x);
            return;
        }
        let mut i = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[i] = lo;
                i += 1;
            }
            x = hi;
        }
        self.partials.truncate(i);
        self.partials.push(x);
    }

    /// Add an i64 exactly by splitting it into two halves that each convert
    /// to f64 without rounding.
    fn add_i64(&mut self, v: i64) {
        let hi = (v >> 32) as f64 * 4_294_967_296.0; // exact: |v>>32| ≤ 2^31
        let lo = (v & 0xFFFF_FFFF) as f64; // exact: < 2^32
        self.add(hi);
        self.add(lo);
    }

    /// The correctly rounded double value of the exact sum, with CPython
    /// fsum's half-ulp correction for exact ties.
    fn value(&self) -> f64 {
        if let Some(nf) = self.non_finite {
            return nf + self.partials.iter().sum::<f64>();
        }
        let n = self.partials.len();
        if n == 0 {
            return 0.0;
        }
        let mut i = n - 1;
        let mut hi = self.partials[i];
        let mut lo = 0.0;
        while i > 0 {
            i -= 1;
            let x = hi;
            let y = self.partials[i];
            hi = x + y;
            lo = y - (hi - x);
            if lo != 0.0 {
                break;
            }
        }
        // If the rounding of (hi, lo) ended exactly halfway and the next
        // partial pulls further in lo's direction, round away from hi.
        if i > 0
            && ((lo < 0.0 && self.partials[i - 1] < 0.0)
                || (lo > 0.0 && self.partials[i - 1] > 0.0))
        {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

// ------------------------------------------------------------- aggregation

/// One aggregate accumulator, mirroring SQL semantics independently of the
/// engine: NULLs are skipped, `COUNT(∅) = 0`, other aggregates over the
/// empty set are `NULL`, integer sums are exact (error on overflow), float
/// sums are correctly rounded exact sums.
struct Accumulator {
    func: AggFunc,
    count: i64,
    int_sum: i64,
    floats: ExactSum,
    saw_float: bool,
    extremum: Value,
}

impl Accumulator {
    fn new(func: AggFunc) -> Accumulator {
        Accumulator {
            func,
            count: 0,
            int_sum: 0,
            floats: ExactSum::default(),
            saw_float: false,
            extremum: Value::Null,
        }
    }

    fn accumulate(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.int_sum =
                        self.int_sum.checked_add(*i).ok_or(OracleError::SumOverflow)?;
                }
                Value::Float(x) => {
                    self.saw_float = true;
                    self.floats.add(*x);
                }
                other => {
                    return Err(TypeError::BadOperand(format!(
                        "{} over non-numeric value {other}",
                        self.func.name()
                    ))
                    .into())
                }
            },
            AggFunc::Max => {
                if self.extremum.is_null()
                    || v.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Greater)
                {
                    self.extremum = v.clone();
                }
            }
            AggFunc::Min => {
                if self.extremum.is_null()
                    || v.sql_cmp(&self.extremum)? == Some(std::cmp::Ordering::Less)
                {
                    self.extremum = v.clone();
                }
            }
        }
        Ok(())
    }

    /// `COUNT(*)`: every row counts, NULLs included.
    fn accumulate_row(&mut self) {
        self.count += 1;
    }

    fn exact_total(&self) -> f64 {
        let mut s = self.floats.clone();
        s.add_i64(self.int_sum);
        s.value()
    }

    fn finish(&self) -> Value {
        if self.count == 0 {
            return self.func.empty_value();
        }
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.saw_float {
                    Value::Float(self.exact_total())
                } else {
                    Value::Int(self.int_sum)
                }
            }
            AggFunc::Avg => {
                let total = if self.saw_float {
                    self.exact_total()
                } else {
                    self.int_sum as f64
                };
                Value::Float(total / self.count as f64)
            }
            AggFunc::Max | AggFunc::Min => self.extremum.clone(),
        }
    }
}

// ------------------------------------------------------------------ oracle

/// The reference evaluator: a catalog of in-memory relations plus a
/// recursive interpreter over [`QueryBlock`]s.
#[derive(Default)]
pub struct Oracle {
    tables: BTreeMap<String, Relation>,
}

/// One enclosing binding: the block's joined FROM schema and the current
/// tuple bound to it.
struct Frame<'a> {
    schema: &'a Schema,
    tuple: &'a Tuple,
}

/// Scope chain, outermost first; lookups walk it innermost-first.
type Frames<'a> = [Frame<'a>];

impl Oracle {
    /// Empty oracle.
    pub fn new() -> Oracle {
        Oracle::default()
    }

    /// Register (or replace) a table.
    pub fn load(&mut self, name: impl Into<String>, rel: Relation) {
        self.tables.insert(name.into().to_ascii_uppercase(), rel);
    }

    /// Evaluate a query, discarding the divergence notes.
    pub fn eval(&self, q: &QueryBlock) -> Result<Relation> {
        Ok(self.eval_noted(q)?.0)
    }

    /// Evaluate a query, returning the result and the divergence licenses
    /// observed along the way.
    pub fn eval_noted(&self, q: &QueryBlock) -> Result<(Relation, Notes)> {
        let mut notes = Notes::default();
        let rel = self.eval_block(q, &[], &mut notes)?;
        Ok((rel, notes))
    }

    // ------------------------------------------------------------- blocks

    /// The joined, requalified schema of a block's FROM clause.
    fn local_schema(&self, q: &QueryBlock) -> Result<Schema> {
        if q.from.is_empty() {
            return Err(OracleError::Unsupported("query with empty FROM".into()));
        }
        let mut seen: Vec<String> = Vec::new();
        let mut schema = Schema::default();
        for tref in &q.from {
            let name = tref.effective_name().to_ascii_uppercase();
            if seen.contains(&name) {
                return Err(OracleError::DuplicateTableName(name));
            }
            seen.push(name);
            let rel = self
                .tables
                .get(&tref.table.to_ascii_uppercase())
                .ok_or_else(|| OracleError::UnknownTable(tref.table.clone()))?;
            schema = schema.join(&rel.schema().requalify(tref.effective_name()));
        }
        Ok(schema)
    }

    /// Every combination of FROM rows, first table outermost — the plain
    /// nested-loops enumeration of Section 2's evaluation semantics.
    /// Resolve every column ref syntactically inside `q` — including those
    /// in nested subqueries — against the walked blocks' local schemas
    /// first, then the enclosing `outer` bindings. A ref that binds to an
    /// outer frame whose value is NULL sets [`Notes::null_outer_ref`]. See
    /// the call site in [`Oracle::eval_block`] for why this must be a
    /// static scan rather than a runtime observation.
    fn scan_null_outer_refs(
        &self,
        q: &QueryBlock,
        local: &mut Vec<Schema>,
        outer: &Frames<'_>,
        notes: &mut Notes,
    ) {
        if outer.is_empty() {
            return;
        }
        let Ok(schema) = self.local_schema(q) else { return };
        local.push(schema);
        for item in &q.select {
            match &item.expr {
                ScalarExpr::Column(c) | ScalarExpr::Aggregate(_, AggArg::Column(c)) => {
                    check_outer_ref(c, local, outer, notes);
                }
                _ => {}
            }
        }
        for c in &q.group_by {
            check_outer_ref(c, local, outer, notes);
        }
        if let Some(p) = &q.where_clause {
            self.scan_pred_refs(p, local, outer, notes);
        }
        local.pop();
    }

    fn scan_pred_refs(
        &self,
        p: &Predicate,
        local: &mut Vec<Schema>,
        outer: &Frames<'_>,
        notes: &mut Notes,
    ) {
        let operand = |o: &Operand, local: &mut Vec<Schema>, notes: &mut Notes| match o {
            Operand::Column(c) => check_outer_ref(c, local, outer, notes),
            Operand::Literal(_) => {}
            Operand::Subquery(q) => self.scan_null_outer_refs(q, local, outer, notes),
        };
        match p {
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    self.scan_pred_refs(p, local, outer, notes);
                }
            }
            Predicate::Not(p) => self.scan_pred_refs(p, local, outer, notes),
            Predicate::Compare { left, right, .. } => {
                operand(left, local, notes);
                operand(right, local, notes);
            }
            Predicate::In { operand: o, rhs, .. } => {
                operand(o, local, notes);
                if let InRhs::Subquery(q) = rhs {
                    self.scan_null_outer_refs(q, local, outer, notes);
                }
            }
            Predicate::Exists { query, .. } => {
                self.scan_null_outer_refs(query, local, outer, notes);
            }
            Predicate::Quantified { left, query, .. } => {
                operand(left, local, notes);
                self.scan_null_outer_refs(query, local, outer, notes);
            }
            Predicate::IsNull { operand: o, .. } => operand(o, local, notes),
        }
    }

    fn enumerate(&self, q: &QueryBlock) -> Result<Vec<Tuple>> {
        let rels: Vec<&Relation> = q
            .from
            .iter()
            .map(|t| {
                self.tables
                    .get(&t.table.to_ascii_uppercase())
                    .ok_or_else(|| OracleError::UnknownTable(t.table.clone()))
            })
            .collect::<Result<_>>()?;
        let mut out = vec![Tuple::new(Vec::new())];
        for rel in rels {
            let mut next = Vec::with_capacity(out.len() * rel.len().max(1));
            for prefix in &out {
                for t in rel.tuples() {
                    next.push(prefix.join(t));
                }
            }
            out = next;
        }
        Ok(out)
    }

    /// Evaluate one block under the given enclosing bindings.
    fn eval_block(
        &self,
        q: &QueryBlock,
        outer: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Relation> {
        let schema = self.local_schema(q)?;
        // Flag NULL outer references *statically*, before any row is
        // enumerated. Runtime `lookup` only notices a NULL binding when the
        // correlation predicate actually evaluates — but if the inner
        // relation is empty, no candidate row ever binds and the predicate
        // never runs, while a transformed plan still materializes the
        // correlation keys from the outer table and silently drops the NULL
        // key at its equijoin (nested iteration's COUNT(*) sees 0 matches
        // and keeps the row). The note must fire either way.
        self.scan_null_outer_refs(q, &mut Vec::new(), outer, notes);
        // Top-level conjuncts evaluate simple-first, mirroring the paper's
        // System R loop (and the engine): a tuple that fails a simple
        // predicate is never bound to any inner block, and evaluation of a
        // row stops at its first non-TRUE conjunct — so errors (e.g. a
        // 2-row scalar subquery) surface for exactly the rows the engine
        // reaches, in the same order.
        let conjuncts: Vec<&Predicate> = match &q.where_clause {
            Some(p) => p.conjuncts(),
            None => Vec::new(),
        };
        let (simple, nested): (Vec<&&Predicate>, Vec<&&Predicate>) =
            conjuncts.iter().partition(|p| !p.contains_subquery());
        let mut survivors: Vec<Tuple> = Vec::new();
        'rows: for candidate in self.enumerate(q)? {
            let frames = push_frame(outer, &schema, &candidate);
            for p in simple.iter().chain(nested.iter()) {
                if self.eval_pred(p, &frames, notes)? != Some(true) {
                    continue 'rows;
                }
            }
            survivors.push(candidate);
        }
        self.eval_select(q, &schema, survivors, outer, notes)
    }

    // ------------------------------------------------------------- select

    fn eval_select(
        &self,
        q: &QueryBlock,
        schema: &Schema,
        survivors: Vec<Tuple>,
        outer: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Relation> {
        let out_schema = self.output_schema(q, schema)?;
        let mut rows: Vec<Tuple> = if !q.group_by.is_empty() {
            self.eval_grouped(q, schema, &survivors, outer, notes)?
        } else if q.has_aggregate_select() {
            // Scalar aggregate: exactly one row, even over zero survivors.
            vec![self.aggregate_row(&q.select, schema, &survivors, outer, notes)?]
        } else {
            let mut rows = Vec::with_capacity(survivors.len());
            for t in &survivors {
                let frames = push_frame(outer, schema, t);
                let mut vals = Vec::with_capacity(q.select.len());
                for item in &q.select {
                    vals.push(self.eval_scalar(&item.expr, &frames, notes)?);
                }
                rows.push(Tuple::new(vals));
            }
            rows
        };
        if q.distinct {
            rows.sort_by(Tuple::total_cmp);
            rows.dedup();
        }
        if !q.order_by.is_empty() {
            rows = order_rows(rows, &q.order_by, &out_schema, &q.select)?;
        }
        Relation::new(out_schema, rows).map_err(|e| OracleError::Type(e))
    }

    /// GROUP BY evaluation: groups in first-encounter order, NULL keys
    /// grouping together, key equality following SQL comparison (so `3`
    /// and `3.0` share a group).
    fn eval_grouped(
        &self,
        q: &QueryBlock,
        schema: &Schema,
        survivors: &[Tuple],
        outer: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Vec<Tuple>> {
        let key_idx: Vec<usize> = q
            .group_by
            .iter()
            .map(|c| schema.resolve(c.table.as_deref(), &c.column))
            .collect::<std::result::Result<_, _>>()?;
        let mut groups: Vec<(Tuple, Vec<&Tuple>)> = Vec::new();
        for t in survivors {
            let key = t.project(&key_idx);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(t),
                None => groups.push((key, vec![t])),
            }
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, members) in &groups {
            let mut vals = Vec::with_capacity(q.select.len());
            for item in &q.select {
                match &item.expr {
                    ScalarExpr::Aggregate(func, arg) => {
                        vals.push(self.aggregate_over(
                            *func, arg, schema, members, outer, notes,
                        )?);
                    }
                    ScalarExpr::Column(c) => {
                        let i = schema.resolve(c.table.as_deref(), &c.column)?;
                        let pos =
                            key_idx.iter().position(|&k| k == i).ok_or_else(|| {
                                OracleError::Unsupported(format!(
                                    "column {c} in SELECT is not in GROUP BY"
                                ))
                            })?;
                        vals.push(key.get(pos).clone());
                    }
                    ScalarExpr::Literal(v) => vals.push(v.clone()),
                }
            }
            rows.push(Tuple::new(vals));
        }
        Ok(rows)
    }

    /// The single output row of an ungrouped aggregate SELECT.
    fn aggregate_row(
        &self,
        select: &[SelectItem],
        schema: &Schema,
        survivors: &[Tuple],
        outer: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Tuple> {
        let members: Vec<&Tuple> = survivors.iter().collect();
        let mut vals = Vec::with_capacity(select.len());
        for item in select {
            match &item.expr {
                ScalarExpr::Aggregate(func, arg) => {
                    vals.push(self.aggregate_over(*func, arg, schema, &members, outer, notes)?);
                }
                ScalarExpr::Literal(v) => vals.push(v.clone()),
                ScalarExpr::Column(c) => {
                    return Err(OracleError::Unsupported(format!(
                        "bare column {c} in aggregate SELECT without GROUP BY"
                    )))
                }
            }
        }
        Ok(Tuple::new(vals))
    }

    fn aggregate_over(
        &self,
        func: AggFunc,
        arg: &AggArg,
        schema: &Schema,
        members: &[&Tuple],
        outer: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Value> {
        let mut acc = Accumulator::new(func);
        for t in members {
            match arg {
                AggArg::Star => acc.accumulate_row(),
                AggArg::Column(c) => {
                    let frames = push_frame(outer, schema, t);
                    let v = lookup(&frames, c, notes)?;
                    acc.accumulate(&v)?;
                }
            }
        }
        Ok(acc.finish())
    }

    fn eval_scalar(
        &self,
        e: &ScalarExpr,
        frames: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Value> {
        match e {
            ScalarExpr::Column(c) => lookup(frames, c, notes),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Aggregate(..) => Err(OracleError::Unsupported(
                "aggregate outside aggregate SELECT".into(),
            )),
        }
    }

    fn output_schema(&self, q: &QueryBlock, schema: &Schema) -> Result<Schema> {
        let mut cols = Vec::with_capacity(q.select.len());
        for item in &q.select {
            let (name, ty) = match &item.expr {
                ScalarExpr::Column(c) => {
                    let i = schema.resolve(c.table.as_deref(), &c.column)?;
                    let col = &schema.columns()[i];
                    (col.name.clone(), col.ty)
                }
                ScalarExpr::Literal(v) => {
                    ("LITERAL".to_string(), v.column_type().unwrap_or(ColumnType::Int))
                }
                ScalarExpr::Aggregate(func, arg) => {
                    let ty = match (func, arg) {
                        (AggFunc::Count, _) => ColumnType::Int,
                        (AggFunc::Avg, _) => ColumnType::Float,
                        (_, AggArg::Star) => ColumnType::Int,
                        (_, AggArg::Column(c)) => {
                            match schema.try_resolve(c.table.as_deref(), &c.column) {
                                Some(i) => schema.columns()[i].ty,
                                None => ColumnType::Int,
                            }
                        }
                    };
                    (func.name().to_string(), ty)
                }
            };
            let name = item.alias.clone().unwrap_or(name);
            cols.push(Column::new(name, ty));
        }
        Ok(Schema::new(cols))
    }

    // --------------------------------------------------------- predicates

    fn eval_pred(
        &self,
        p: &Predicate,
        frames: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Option<bool>> {
        match p {
            Predicate::And(ps) => {
                let mut unknown = false;
                for q in ps {
                    match self.eval_pred(q, frames, notes)? {
                        Some(false) => return Ok(Some(false)),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                Ok(if unknown { None } else { Some(true) })
            }
            Predicate::Or(ps) => {
                let mut unknown = false;
                for q in ps {
                    match self.eval_pred(q, frames, notes)? {
                        Some(true) => return Ok(Some(true)),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                Ok(if unknown { None } else { Some(false) })
            }
            Predicate::Not(q) => Ok(self.eval_pred(q, frames, notes)?.map(|b| !b)),
            Predicate::Compare { left, op, right } => {
                let l = self.eval_operand(left, frames, notes)?;
                let r = self.eval_operand(right, frames, notes)?;
                compare(&l, *op, &r)
            }
            Predicate::In { operand, negated, rhs } => {
                let v = self.eval_operand(operand, frames, notes)?;
                let raw = match rhs {
                    InRhs::List(list) => in_values(&v, list.iter())?,
                    InRhs::Subquery(q) => {
                        let vals = self.inner_values(q, frames, notes)?;
                        let raw = in_values(&v, vals.iter())?;
                        // NEST-N-J duplicates license: did the value match
                        // more than one inner row? (Advisory only — errors
                        // past the first match are ignored, mirroring the
                        // engine's short-circuit.)
                        let matches = vals
                            .iter()
                            .filter(|r| v.sql_eq(r) == Ok(Some(true)))
                            .count();
                        if matches > 1 {
                            notes.dup_in_match = true;
                        }
                        raw
                    }
                };
                Ok(if *negated { raw.map(|b| !b) } else { raw })
            }
            Predicate::Exists { negated, query } => {
                let nonempty = !self.inner_values(query, frames, notes)?.is_empty();
                Ok(Some(if *negated { !nonempty } else { nonempty }))
            }
            Predicate::Quantified { left, op, quantifier, query } => {
                let v = self.eval_operand(left, frames, notes)?;
                let rows = self.inner_values(query, frames, notes)?;
                if *quantifier == Quantifier::All
                    && (rows.is_empty() || rows.iter().any(Value::is_null))
                {
                    notes.all_over_empty_or_null = true;
                }
                // `= ANY` is rewritten to `IN` by the predicate-extension
                // pass, so it inherits the NEST-N-J duplicates license.
                if *quantifier == Quantifier::Any && *op == CompareOp::Eq {
                    let matches =
                        rows.iter().filter(|r| v.sql_eq(r) == Ok(Some(true))).count();
                    if matches > 1 {
                        notes.dup_in_match = true;
                    }
                }
                quantified(&v, *op, *quantifier, &rows)
            }
            Predicate::IsNull { operand, negated } => {
                let v = self.eval_operand(operand, frames, notes)?;
                Ok(Some(if *negated { !v.is_null() } else { v.is_null() }))
            }
        }
    }

    fn eval_operand(
        &self,
        o: &Operand,
        frames: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Value> {
        match o {
            Operand::Column(c) => lookup(frames, c, notes),
            Operand::Literal(v) => Ok(v.clone()),
            Operand::Subquery(q) => {
                let rel = self.eval_block(q, frames, notes)?;
                match rel.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(rel.tuples()[0].get(0).clone()),
                    n => Err(OracleError::ScalarSubqueryCardinality(n)),
                }
            }
        }
    }

    /// Column 0 of an inner block's rows — the value list `IN`, `EXISTS`,
    /// and quantified comparisons range over.
    fn inner_values(
        &self,
        q: &QueryBlock,
        frames: &Frames<'_>,
        notes: &mut Notes,
    ) -> Result<Vec<Value>> {
        let rel = self.eval_block(q, frames, notes)?;
        Ok(rel.tuples().iter().map(|t| t.get(0).clone()).collect())
    }
}

/// Extend a scope chain with one more (innermost) frame.
fn push_frame<'a>(outer: &Frames<'a>, schema: &'a Schema, tuple: &'a Tuple) -> Vec<Frame<'a>> {
    let mut frames: Vec<Frame<'a>> = Vec::with_capacity(outer.len() + 1);
    for f in outer {
        frames.push(Frame { schema: f.schema, tuple: f.tuple });
    }
    frames.push(Frame { schema, tuple });
    frames
}

/// The resolution half of [`Oracle::scan_null_outer_refs`]: a ref that
/// binds inside the walked blocks is local (no note); one that falls
/// through to an enclosing frame with a NULL value is a NULL outer
/// reference. Resolution errors are ignored here — the evaluator proper
/// reports them.
fn check_outer_ref(
    c: &ColumnRef,
    local: &[Schema],
    outer: &Frames<'_>,
    notes: &mut Notes,
) {
    for s in local.iter().rev() {
        if s.resolve(c.table.as_deref(), &c.column).is_ok() {
            return;
        }
    }
    for f in outer.iter().rev() {
        if let Ok(i) = f.schema.resolve(c.table.as_deref(), &c.column) {
            if f.tuple.get(i).is_null() {
                notes.null_outer_ref = true;
            }
            return;
        }
    }
}

/// Resolve a column against the scope chain, nearest scope first. An
/// ambiguous match *within* a scope is an error; an unknown name falls
/// through to the next enclosing scope.
fn lookup(frames: &Frames<'_>, c: &ColumnRef, notes: &mut Notes) -> Result<Value> {
    for (from_innermost, f) in frames.iter().rev().enumerate() {
        match f.schema.resolve(c.table.as_deref(), &c.column) {
            Ok(i) => {
                let v = f.tuple.get(i).clone();
                if from_innermost > 0 && v.is_null() {
                    notes.null_outer_ref = true;
                }
                return Ok(v);
            }
            Err(TypeError::UnknownColumn(_)) => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Err(TypeError::UnknownColumn(c.to_string()).into())
}

/// Three-valued scalar comparison.
fn compare(l: &Value, op: CompareOp, r: &Value) -> Result<Option<bool>> {
    Ok(l.sql_cmp(r)?.map(|ord| op.eval(ord)))
}

/// `v IN (values…)` under three-valued logic: TRUE on any match, else
/// UNKNOWN if any comparison was unknown, else FALSE (empty ⇒ FALSE).
fn in_values<'a>(v: &Value, list: impl Iterator<Item = &'a Value>) -> Result<Option<bool>> {
    let mut unknown = false;
    for r in list {
        match v.sql_eq(r)? {
            Some(true) => return Ok(Some(true)),
            None => unknown = true,
            Some(false) => {}
        }
    }
    Ok(if unknown { None } else { Some(false) })
}

/// SQL quantified-comparison semantics: `ANY` is TRUE if any comparison is
/// TRUE, else UNKNOWN if any is UNKNOWN, else FALSE (FALSE over ∅); `ALL`
/// dually (TRUE over ∅).
fn quantified(
    v: &Value,
    op: CompareOp,
    quant: Quantifier,
    rows: &[Value],
) -> Result<Option<bool>> {
    let mut unknown = false;
    for r in rows {
        match compare(v, op, r)? {
            Some(true) if quant == Quantifier::Any => return Ok(Some(true)),
            Some(false) if quant == Quantifier::All => return Ok(Some(false)),
            None => unknown = true,
            _ => {}
        }
    }
    Ok(if unknown { None } else { Some(quant == Quantifier::All) })
}

/// Stable ORDER BY over the output rows: keys resolve against the output
/// schema (aliases included), falling back to a positional match against
/// the select list.
fn order_rows(
    mut rows: Vec<Tuple>,
    keys: &[OrderKey],
    out_schema: &Schema,
    select: &[SelectItem],
) -> Result<Vec<Tuple>> {
    let mut idx: Vec<(usize, SortDir)> = Vec::with_capacity(keys.len());
    for k in keys {
        let i = out_schema
            .try_resolve(None, &k.column.column)
            .or_else(|| out_schema.try_resolve(k.column.table.as_deref(), &k.column.column))
            .or_else(|| {
                select.iter().position(|item| match &item.expr {
                    ScalarExpr::Column(c) => {
                        c.column == k.column.column
                            && (k.column.table.is_none() || c.table == k.column.table)
                    }
                    _ => false,
                })
            })
            .ok_or_else(|| TypeError::UnknownColumn(k.column.to_string()))?;
        idx.push((i, k.dir));
    }
    rows.sort_by(|a, b| {
        for &(i, dir) in &idx {
            let o = a.get(i).total_cmp(b.get(i));
            let o = if dir == SortDir::Desc { o.reverse() } else { o };
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_sql::parse_query;

    fn int_rel(cols: &[&str], rows: &[&[Option<i64>]]) -> Relation {
        let schema = Schema::new(
            cols.iter().map(|c| Column::new(c.to_string(), ColumnType::Int)).collect(),
        );
        let tuples = rows
            .iter()
            .map(|r| {
                Tuple::new(r.iter().map(|v| v.map_or(Value::Null, Value::Int)).collect())
            })
            .collect();
        Relation::new(schema, tuples).unwrap()
    }

    fn kiessling() -> Oracle {
        // The paper's Section 4 PARTS/SUPPLY data (dates dropped).
        let mut o = Oracle::new();
        o.load(
            "PARTS",
            int_rel(&["PNUM", "QOH"], &[&[Some(3), Some(6)], &[Some(10), Some(1)], &[Some(8), Some(0)]]),
        );
        o.load(
            "SUPPLY",
            int_rel(
                &["PNUM", "QUAN"],
                &[
                    &[Some(3), Some(4)],
                    &[Some(3), Some(2)],
                    &[Some(10), Some(1)],
                    &[Some(10), Some(2)],
                    &[Some(8), Some(5)],
                ],
            ),
        );
        o
    }

    fn rows_of(rel: &Relation) -> Vec<Vec<Value>> {
        rel.tuples().iter().map(|t| t.values().to_vec()).collect()
    }

    #[test]
    fn count_bug_query_keeps_part_8() {
        // Q2: COUNT over an empty group is 0, so part 8 (QOH = 0, no
        // supplies below quantity 3) must survive… here: QOH = COUNT of
        // supplies with QUAN < 3.
        let o = kiessling();
        let q = parse_query(
            "SELECT PNUM FROM PARTS WHERE QOH = \
             (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN < 3)",
        )
        .unwrap();
        let rel = o.eval(&q).unwrap();
        let mut got: Vec<i64> = rel
            .tuples()
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                other => panic!("{other}"),
            })
            .collect();
        got.sort();
        // part 3: supplies {4,2} → count(<3)=1 ≠ 6; part 10: {1,2} → 2 ≠ 1;
        // part 8: {5} → 0 = 0 ✓.
        assert_eq!(got, vec![8]);
    }

    #[test]
    fn simple_conjuncts_filter_rows_before_nested_errors_surface() {
        // Shrunk from a diff_prop counterexample: the engine evaluates
        // simple conjuncts before nested ones and drops a row at the first
        // non-TRUE conjunct (System R order), so a 2-row scalar subquery in
        // a later conjunct never runs for rows the simple predicate already
        // rejected. The oracle must agree — it used to evaluate conjuncts
        // in textual order and raise the cardinality error spuriously.
        let mut o = Oracle::new();
        o.load("T0", int_rel(&["K", "V"], &[&[Some(-1), Some(-2)]]));
        o.load("T2", int_rel(&["K"], &[&[Some(1)], &[Some(2)]]));

        // The only row fails `V IN (0)`, so the subquery is unreachable.
        let q = parse_query("SELECT V FROM T0 WHERE V >= (SELECT K FROM T2) AND V IN (0)")
            .unwrap();
        let rel = o.eval(&q).unwrap();
        assert!(rel.is_empty(), "{rel}");

        // When the row survives the simple conjunct, the error does surface.
        let q = parse_query("SELECT V FROM T0 WHERE V >= (SELECT K FROM T2) AND V IN (-2)")
            .unwrap();
        assert_eq!(o.eval(&q), Err(OracleError::ScalarSubqueryCardinality(2)));
    }

    #[test]
    fn scalar_aggregate_over_empty_is_one_row() {
        let mut o = Oracle::new();
        o.load("T", int_rel(&["A"], &[]));
        let q = parse_query("SELECT COUNT(A), MAX(A) FROM T").unwrap();
        let rel = o.eval(&q).unwrap();
        assert_eq!(rows_of(&rel), vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn three_valued_where_drops_unknown() {
        let mut o = Oracle::new();
        o.load("T", int_rel(&["A"], &[&[Some(1)], &[None], &[Some(3)]]));
        let q = parse_query("SELECT A FROM T WHERE A > 1").unwrap();
        assert_eq!(rows_of(&o.eval(&q).unwrap()), vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn exists_and_not_exists_are_two_valued() {
        let o = kiessling();
        let q = parse_query(
            "SELECT PNUM FROM PARTS WHERE NOT EXISTS \
             (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN > 4)",
        )
        .unwrap();
        let rel = o.eval(&q).unwrap();
        assert_eq!(rel.len(), 2); // parts 3 and 10; part 8 has QUAN 5
    }

    #[test]
    fn any_all_empty_set_semantics_and_license() {
        let mut o = Oracle::new();
        o.load("T", int_rel(&["A"], &[&[Some(1)]]));
        o.load("E", int_rel(&["B"], &[]));
        let q = parse_query("SELECT A FROM T WHERE A < ALL (SELECT B FROM E)").unwrap();
        let (rel, notes) = o.eval_noted(&q).unwrap();
        assert_eq!(rel.len(), 1, "x < ALL (∅) is TRUE");
        assert!(notes.all_over_empty_or_null, "empty ALL must license divergence");
        let q = parse_query("SELECT A FROM T WHERE A > ANY (SELECT B FROM E)").unwrap();
        let (rel, notes) = o.eval_noted(&q).unwrap();
        assert_eq!(rel.len(), 0, "x > ANY (∅) is FALSE");
        assert!(!notes.all_over_empty_or_null);
    }

    #[test]
    fn duplicate_in_matches_are_noted() {
        let mut o = Oracle::new();
        o.load("OUTR", int_rel(&["A"], &[&[Some(1)]]));
        o.load("INNR", int_rel(&["B"], &[&[Some(1)], &[Some(1)]]));
        let q = parse_query("SELECT A FROM OUTR WHERE A IN (SELECT B FROM INNR)").unwrap();
        let (rel, notes) = o.eval_noted(&q).unwrap();
        assert_eq!(rel.len(), 1, "IN keeps the outer row once");
        assert!(notes.dup_in_match);
    }

    #[test]
    fn null_outer_ref_is_noted() {
        let mut o = Oracle::new();
        o.load("OUTR", int_rel(&["A"], &[&[None]]));
        o.load("INNR", int_rel(&["B"], &[&[Some(1)]]));
        let q = parse_query(
            "SELECT COUNT(*) FROM OUTR WHERE 0 = \
             (SELECT COUNT(B) FROM INNR WHERE INNR.B = OUTR.A)",
        )
        .unwrap();
        let (rel, notes) = o.eval_noted(&q).unwrap();
        // Correlation is UNKNOWN for the NULL outer value → empty group →
        // COUNT 0 → outer row kept.
        assert_eq!(rows_of(&rel), vec![vec![Value::Int(1)]]);
        assert!(notes.null_outer_ref);
    }

    #[test]
    fn null_outer_ref_noted_even_when_inner_relation_is_empty() {
        // Shrunk from a diff_prop counterexample: with INNR *empty*, the
        // correlation predicate never evaluates, so the runtime lookup
        // cannot observe the NULL outer value — but NEST-JA2 still
        // materializes the correlation keys from OUTR and its equijoin
        // drops the NULL key, while nested iteration's COUNT over zero
        // matches is 0 and the outer row survives. The static scan must
        // set the note so the divergence license applies.
        let mut o = Oracle::new();
        o.load("OUTR", int_rel(&["A"], &[&[None]]));
        o.load("INNR", int_rel(&["B"], &[]));
        let q = parse_query(
            "SELECT A FROM OUTR WHERE 0 = \
             (SELECT COUNT(B) FROM INNR WHERE INNR.B = OUTR.A)",
        )
        .unwrap();
        let (rel, notes) = o.eval_noted(&q).unwrap();
        assert_eq!(rows_of(&rel), vec![vec![Value::Null]]);
        assert!(notes.null_outer_ref, "scan must flag the unevaluated NULL correlation key");
    }

    #[test]
    fn scalar_subquery_cardinality_errors() {
        let mut o = Oracle::new();
        o.load("T", int_rel(&["A"], &[&[Some(1)]]));
        o.load("U", int_rel(&["B"], &[&[Some(1)], &[Some(2)]]));
        let q = parse_query("SELECT A FROM T WHERE A = (SELECT B FROM U)").unwrap();
        assert_eq!(o.eval(&q), Err(OracleError::ScalarSubqueryCardinality(2)));
    }

    #[test]
    fn group_by_groups_nulls_together_in_first_encounter_order() {
        let mut o = Oracle::new();
        o.load(
            "T",
            int_rel(&["K", "V"], &[&[None, Some(1)], &[Some(1), Some(3)], &[None, Some(2)]]),
        );
        let q = parse_query("SELECT K, SUM(V) FROM T GROUP BY K").unwrap();
        let rel = o.eval(&q).unwrap();
        assert_eq!(
            rows_of(&rel),
            vec![
                vec![Value::Null, Value::Int(3)],
                vec![Value::Int(1), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn distinct_dedups() {
        let mut o = Oracle::new();
        o.load("T", int_rel(&["A"], &[&[Some(2)], &[Some(1)], &[Some(2)]]));
        let q = parse_query("SELECT DISTINCT A FROM T").unwrap();
        assert_eq!(o.eval(&q).unwrap().len(), 2);
    }

    #[test]
    fn exact_sum_is_order_independent_and_correctly_rounded() {
        let xs = [1e16, 0.1, -1e16, 0.1, 3.25, 1e-9];
        let mut fwd = ExactSum::default();
        for x in xs {
            fwd.add(x);
        }
        let mut rev = ExactSum::default();
        for x in xs.iter().rev() {
            rev.add(*x);
        }
        assert_eq!(fwd.value().to_bits(), rev.value().to_bits());
        // Naive left-to-right summation gets this wrong; the exact sum is
        // 0.2 + 3.25 + 1e-9 correctly rounded.
        let expect = 0.1 + 0.1 + 3.25 + 1e-9; // these happen to be exactly representable steps? no — compute via ExactSum of the remainder
        let mut rem = ExactSum::default();
        for x in [0.1, 0.1, 3.25, 1e-9] {
            rem.add(x);
        }
        let _ = expect;
        assert_eq!(fwd.value().to_bits(), rem.value().to_bits());
    }

    #[test]
    fn float_sum_matches_exact_spec() {
        let mut o = Oracle::new();
        let schema = Schema::new(vec![Column::new("F", ColumnType::Float)]);
        let rows =
            vec![0.1, 0.2, 0.3, -0.25, 1e15, -1e15, 0.7].into_iter().map(|x| Tuple::new(vec![Value::Float(x)]));
        o.load("T", Relation::new(schema, rows.collect()).unwrap());
        let q = parse_query("SELECT SUM(F) FROM T").unwrap();
        let rel = o.eval(&q).unwrap();
        let Value::Float(got) = rel.tuples()[0].get(0) else { panic!() };
        let mut s = ExactSum::default();
        for x in [0.1, 0.2, 0.3, -0.25, 1e15, -1e15, 0.7] {
            s.add(x);
        }
        assert_eq!(got.to_bits(), s.value().to_bits());
    }

    #[test]
    fn int_sum_overflow_is_an_error() {
        let mut o = Oracle::new();
        o.load("T", int_rel(&["A"], &[&[Some(i64::MAX)], &[Some(1)]]));
        let q = parse_query("SELECT SUM(A) FROM T").unwrap();
        assert_eq!(o.eval(&q), Err(OracleError::SumOverflow));
    }

    #[test]
    fn deep_correlation_reaches_grandparent_scope() {
        let mut o = Oracle::new();
        o.load("A", int_rel(&["X"], &[&[Some(1)], &[Some(2)]]));
        o.load("B", int_rel(&["Y"], &[&[Some(1)], &[Some(2)]]));
        o.load("C", int_rel(&["Z"], &[&[Some(1)]]));
        // C's block references A.X across B's block.
        let q = parse_query(
            "SELECT X FROM A WHERE EXISTS (SELECT Y FROM B WHERE EXISTS \
             (SELECT Z FROM C WHERE C.Z = A.X))",
        )
        .unwrap();
        let rel = o.eval(&q).unwrap();
        assert_eq!(rows_of(&rel), vec![vec![Value::Int(1)]]);
    }
}
