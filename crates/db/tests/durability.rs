//! End-to-end durability for the `Database` facade: a file-backed database
//! survives restarts, recovers from injected crashes to the last committed
//! statement, keeps its B+tree indexes across reopen, and performs exactly
//! the same counted page I/O as the memory backend.

use nsql_db::{Database, IndexUse, QueryOptions, Strategy};
use nsql_storage::FaultPlan;
use nsql_testkit::TempDir;
use nsql_types::Relation;

/// Kiessling's example database (the paper's Section 4 walkthrough).
const SETUP: &str = "CREATE TABLE PARTS (PNUM INT, QOH INT);
     CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
     INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
     INSERT INTO SUPPLY VALUES
       (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
       (10, 2, 8-10-81), (8, 5, 5-7-83);";

/// Kiessling's Q2 — the COUNT-bug query.
const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

fn col0_sorted(rel: &Relation) -> Vec<String> {
    let mut v: Vec<String> = rel.tuples().iter().map(|t| t.get(0).to_string()).collect();
    v.sort();
    v
}

#[test]
fn kiessling_q2_survives_restart() {
    let dir = TempDir::new("nsql-db-restart");
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.execute_script(SETUP).unwrap();
        db.catalog_mut().create_index("PARTS", "PNUM").unwrap();
        let r = db.query(Q2).unwrap();
        assert_eq!(col0_sorted(&r), vec!["10", "8"]);
    }
    // Restart: a brand-new process image would do exactly this.
    let db = Database::open(dir.path()).unwrap();
    let report = db.open_report().expect("open() retains its report");
    assert_eq!(report.tables, 2, "{report:?}");
    assert_eq!(report.indexes, 1, "{report:?}");
    assert!(report.recovery.commits_applied > 0 || report.recovery.had_checkpoint);
    // The recovery lifecycle is spanned for observability.
    let open_span = report
        .spans
        .iter()
        .find_map(|s| s.find("open"))
        .expect("open span recorded");
    assert!(open_span.find("open: recover store").is_some());
    assert!(open_span.find("open: restore catalog").is_some());
    let r = db.query(Q2).unwrap();
    assert_eq!(col0_sorted(&r), vec!["10", "8"]);
}

#[test]
fn crash_point_sweep_recovers_last_commit() {
    // Kill the store at every write site of a follow-up INSERT's commit and
    // check that reopening yields either exactly the pre-crash state or
    // (when the crash site lies beyond the commit) exactly the post-state —
    // never anything in between, and never an error.
    for crash_at in 0..16u64 {
        let dir = TempDir::new("nsql-db-crash");
        let baseline;
        let insert_landed;
        {
            let mut db = Database::open(dir.path()).unwrap();
            db.execute_script(SETUP).unwrap();
            baseline = col0_sorted(&db.query("SELECT PNUM FROM PARTS").unwrap());
            let store = db.storage().durable().expect("file-backed").clone();
            store.inject_fault(FaultPlan { crash_at_op: crash_at, torn_bytes: Some(3) });
            // The fault model simulates process death: the doomed process
            // does not observe an error, its writes just stop reaching disk.
            db.execute_script("INSERT INTO PARTS VALUES (99, 99)").unwrap();
            insert_landed = !store.crashed();
        }
        let db = Database::open(dir.path())
            .unwrap_or_else(|e| panic!("recovery failed at crash site {crash_at}: {e}"));
        let rows = col0_sorted(&db.query("SELECT PNUM FROM PARTS").unwrap());
        if insert_landed {
            let mut want = baseline.clone();
            want.push("99".into());
            want.sort();
            assert_eq!(rows, want, "crash site {crash_at}: committed insert lost");
        } else {
            assert_eq!(rows, baseline, "crash site {crash_at}: partial insert surfaced");
        }
        // Oracle check on the recovered image: both strategies agree on Q2.
        let ni = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
        let tr = db.query_with(Q2, &QueryOptions::transformed()).unwrap();
        assert!(
            tr.relation.same_bag(&ni.relation),
            "crash site {crash_at}: strategies diverge after recovery"
        );
    }
}

#[test]
fn memory_and_file_backends_count_identical_io() {
    let dir = TempDir::new("nsql-db-iodiff");
    let mut mem = Database::with_storage(8, 256);
    let mut file = Database::open_with(8, 256, dir.path()).unwrap();
    mem.execute_script(SETUP).unwrap();
    file.execute_script(SETUP).unwrap();
    for opts in [
        QueryOptions::nested_iteration(),
        QueryOptions::transformed(),
        QueryOptions::transformed_merge(),
    ] {
        let a = mem.query_with(Q2, &opts).unwrap();
        let b = file.query_with(Q2, &opts).unwrap();
        assert!(a.relation.same_bag(&b.relation));
        assert_eq!(
            (a.io.reads, a.io.writes),
            (b.io.reads, b.io.writes),
            "page I/O must be byte-identical across backends"
        );
    }
}

#[test]
fn persisted_index_is_used_after_reopen() {
    let dir = TempDir::new("nsql-db-ixreopen");
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.execute_script(SETUP).unwrap();
        db.catalog_mut().create_index("SUPPLY", "PNUM").unwrap();
        db.catalog_mut().create_index("PARTS", "QOH").unwrap();
    }
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(db.open_report().unwrap().indexes, 2);

    // Back-join through the restored index: a type-N query probes SUPPLY.
    let q_in = "SELECT PNUM FROM PARTS WHERE PNUM IN (SELECT PNUM FROM SUPPLY)";
    let prefer = QueryOptions {
        strategy: Strategy::Transform,
        index_use: IndexUse::Prefer,
        cold_start: true,
        ..Default::default()
    };
    let never =
        QueryOptions { index_use: IndexUse::Never, ..prefer.clone() };
    let with_ix = db.query_with(q_in, &prefer).unwrap();
    let without = db.query_with(q_in, &never).unwrap();
    assert!(with_ix.relation.same_bag(&without.relation));
    let log = with_ix.explain.join("\n");
    assert!(
        log.contains("index nested-loop join via IX_SUPPLY_PNUM"),
        "expected index back-join in explain:\n{log}"
    );

    // Restriction through the restored index.
    let q_range = "SELECT PNUM FROM PARTS WHERE QOH >= 1";
    let with_ix = db.query_with(q_range, &prefer).unwrap();
    let without = db.query_with(q_range, &never).unwrap();
    assert!(with_ix.relation.same_bag(&without.relation));
    let log = with_ix.explain.join("\n");
    assert!(
        log.contains("index restrict via IX_PARTS_QOH"),
        "expected index restriction in explain:\n{log}"
    );
}

#[test]
fn dml_after_reopen_keeps_committing() {
    // The reopened database is fully live: further DDL/DML commit and
    // survive another restart, and indexes follow the rewritten table.
    let dir = TempDir::new("nsql-db-redml");
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.execute_script(SETUP).unwrap();
        db.catalog_mut().create_index("PARTS", "PNUM").unwrap();
    }
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.execute_script("INSERT INTO PARTS VALUES (42, 0)").unwrap();
    }
    let db = Database::open(dir.path()).unwrap();
    let rows = col0_sorted(&db.query("SELECT PNUM FROM PARTS").unwrap());
    assert_eq!(rows, vec!["10", "3", "42", "8"]);
    // The rebuilt-and-persisted index still answers probes correctly.
    let prefer = QueryOptions {
        strategy: Strategy::Transform,
        index_use: IndexUse::Prefer,
        cold_start: true,
        ..Default::default()
    };
    let r = db
        .query_with("SELECT QOH FROM PARTS WHERE PNUM = 42", &prefer)
        .unwrap();
    assert_eq!(col0_sorted(&r.relation), vec!["0"]);
}
