//! The paper's Section 4 duplicates problem, demonstrated end-to-end and
//! resolved as an explicit [`DuplicateSemantics`] choice rather than a
//! silent set-level comparison.
//!
//! Nested iteration evaluates `IN` as a membership *test*: each outer tuple
//! appears at most once per occurrence, however many inner rows match.
//! Kim's NEST-N-J replaces the test with a join, so the outer tuple is
//! repeated once per match. With duplicate outer tuples in play, no single
//! transformed plan reproduces the nested bag: `KimFaithful` over-counts
//! matches, `ForceDistinct` collapses legitimate outer duplicates. These
//! tests pin down exactly which equality each choice delivers.

use nsql_db::{Database, DuplicateSemantics, QueryOptions, Strategy};
use nsql_types::Value;

/// PARTS holds part 3 **twice** (a legitimate duplicate outer tuple) and
/// SUPPLY supplies part 3 **twice** (a non-key inner match column).
fn duplicates_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT);
         INSERT INTO PARTS VALUES (3), (3), (10), (7);
         INSERT INTO SUPPLY VALUES (3, 4), (3, 2), (10, 1), (8, 5);",
    )
    .unwrap();
    db
}

const Q: &str = "SELECT PNUM FROM PARTS WHERE PNUM IN (SELECT PNUM FROM SUPPLY)";

fn pnums(db: &Database, opts: &QueryOptions) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .query_with(Q, opts)
        .unwrap()
        .relation
        .tuples()
        .iter()
        .map(|t| match t.get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected {other}"),
        })
        .collect();
    out.sort();
    out
}

#[test]
fn nested_iteration_is_the_ground_truth_bag() {
    let db = duplicates_db();
    // Membership is a per-tuple test: part 3 keeps both its occurrences
    // (one each), part 10 keeps one, part 7 has no match.
    assert_eq!(pnums(&db, &QueryOptions::nested_iteration()), vec![3, 3, 10]);
}

#[test]
fn kim_faithful_join_expansion_over_counts_matches() {
    let db = duplicates_db();
    let opts = QueryOptions {
        strategy: Strategy::Transform,
        duplicates: DuplicateSemantics::KimFaithful,
        cold_start: true,
        ..Default::default()
    };
    // Each of the two PARTS-3 rows joins both SUPPLY-3 rows: 2 × 2 = 4.
    assert_eq!(pnums(&db, &opts), vec![3, 3, 3, 3, 10]);

    // Set-level agreement with nested iteration still holds — the level
    // Kim's transformation actually promises for non-key inner columns.
    let ni = db.query_with(Q, &QueryOptions::nested_iteration()).unwrap().relation;
    let tr = db.query_with(Q, &opts).unwrap().relation;
    assert!(tr.same_set(&ni));
    assert!(!tr.same_bag(&ni), "the over-count must be visible at bag level");
}

#[test]
fn force_distinct_collapses_to_set_semantics() {
    let db = duplicates_db();
    let opts = QueryOptions {
        strategy: Strategy::Transform,
        duplicates: DuplicateSemantics::ForceDistinct,
        cold_start: true,
        ..Default::default()
    };
    // Join-expansion duplicates are gone — but so is the legitimate
    // duplicate outer tuple: DISTINCT output, i.e. set semantics.
    assert_eq!(pnums(&db, &opts), vec![3, 10]);

    let ni = db.query_with(Q, &QueryOptions::nested_iteration()).unwrap().relation;
    let tr = db.query_with(Q, &opts).unwrap().relation;
    assert!(tr.same_set(&ni));
    assert!(!tr.same_bag(&ni), "collapsing the outer duplicate deviates at bag level");
}

#[test]
fn key_valued_inner_column_restores_bag_equality() {
    // When the merged inner column is key-valued (at most one match per
    // outer value), Kim's join expansion is multiplicity-exact and the
    // faithful transform is bag-equal to nested iteration — the condition
    // under which the paper's equivalence claim holds.
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE PARTS (PNUM INT);
         CREATE TABLE SUPPLY (PNUM INT, QUAN INT);
         INSERT INTO PARTS VALUES (3), (3), (10), (7);
         INSERT INTO SUPPLY VALUES (3, 4), (10, 1), (8, 5);",
    )
    .unwrap();
    let ni = db.query_with(Q, &QueryOptions::nested_iteration()).unwrap().relation;
    let tr = db.query_with(Q, &QueryOptions::transformed()).unwrap().relation;
    assert!(tr.same_bag(&ni), "NI:\n{ni}\nTR:\n{tr}");
}
