//! Plain `EXPLAIN` and `EXPLAIN ANALYZE` must tell the same story.
//!
//! The plain report predicts; the ANALYZE report executes. For every
//! executable strategy — nested iteration, the NEST-* transformation, and
//! batched correlated evaluation — the two reports must agree on the
//! decision-shaped lines: the strategy header, whether an exec-mode line
//! is present, and the cache-mode prefix (ANALYZE appends hit/miss counts
//! to the same line). A drift here means EXPLAIN is describing a plan the
//! executor does not run.
//!
//! The three-way strategy-cost block is also pinned: every nested query —
//! correlated or not — must render predicted costs for all three
//! strategies plus the planner's pick, identically in both reports and
//! regardless of which strategy the options force. Only flat queries
//! (no subquery, hence no strategy choice) omit the block.

use nsql_db::{CacheMode, Database, QueryOptions, Strategy};

const SETUP: &str = "CREATE TABLE PARTS (PNUM INT, QOH INT);
     CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
     INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
     INSERT INTO SUPPLY VALUES
       (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
       (10, 2, 8-10-81), (8, 5, 5-7-83);";

/// Kiessling's Q2 — correlated type-JA nesting (the COUNT-bug query).
const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

/// An uncorrelated type-A query: still nested, so it still gets the
/// three-way cost block (batched prices the evaluate-once plan, `d = 1`).
const Q_TYPE_A: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT MAX(QUAN) FROM SUPPLY)";

/// A flat query: no subquery, no strategy choice, no cost block.
const Q_FLAT: &str = "SELECT PNUM FROM PARTS WHERE QOH = 0";

fn mem_db() -> Database {
    let mut db = Database::new();
    db.execute_script(SETUP).unwrap();
    db
}

fn strategies() -> [(&'static str, Strategy); 3] {
    [
        ("nested-iteration", Strategy::NestedIteration),
        ("transform", Strategy::Transform),
        ("batched", Strategy::Batched),
    ]
}

fn opts(strategy: &Strategy, cache: CacheMode) -> QueryOptions {
    QueryOptions {
        strategy: strategy.clone(),
        cache,
        cold_start: true,
        threads: 1,
        ..QueryOptions::default()
    }
}

/// The first `strategy:` line of a report's strategy log.
fn strategy_line(lines: &[String]) -> &String {
    lines
        .iter()
        .find(|l| l.starts_with("strategy:"))
        .expect("every report logs a strategy line")
}

/// Plain EXPLAIN and EXPLAIN ANALYZE agree on the strategy header, the
/// presence of an exec-mode line, and the cache-mode prefix, under every
/// strategy and with the cache on or off.
#[test]
fn plain_and_analyze_reports_agree_on_decision_lines() {
    let db = mem_db();
    for (name, strategy) in strategies() {
        for cache in [CacheMode::Off, CacheMode::On] {
            let o = opts(&strategy, cache);
            let plain = db.explain_query(Q2, false, &o).unwrap();
            let analyzed = db.explain_query(Q2, true, &o).unwrap();

            assert_eq!(
                strategy_line(&plain.strategy),
                strategy_line(&analyzed.strategy),
                "[{name}] strategy header drifted between EXPLAIN and ANALYZE"
            );
            assert_eq!(
                plain.chosen, analyzed.chosen,
                "[{name}] chosen algorithm drifted between EXPLAIN and ANALYZE"
            );

            // Exec-mode line: present for both or for neither. Batched is a
            // row-at-a-time strategy and must not advertise a vectorized
            // mode it will never run.
            let exec = |r: &nsql_db::ExplainReport| {
                r.strategy.iter().any(|l| l.starts_with("exec mode:"))
            };
            assert_eq!(
                exec(&plain),
                exec(&analyzed),
                "[{name}] exec-mode line presence drifted"
            );

            // Cache line: ANALYZE appends observed hit/miss counts to the
            // same prefix plain EXPLAIN prints.
            let cache_line = |r: &nsql_db::ExplainReport| {
                r.strategy.iter().find(|l| l.starts_with("cache: mode")).cloned()
            };
            match (cache_line(&plain), cache_line(&analyzed)) {
                (None, None) => assert!(
                    !cache.enabled(),
                    "[{name}] cache enabled but neither report mentions it"
                ),
                (Some(p), Some(a)) => assert!(
                    a.starts_with(&p),
                    "[{name}] ANALYZE cache line {a:?} does not extend plain line {p:?}"
                ),
                (p, a) => panic!("[{name}] cache line presence drifted: {p:?} vs {a:?}"),
            }
        }
    }
}

/// A correlated query renders the three-way cost block — all three
/// strategies finite, a pick marked — in both reports, for every pinned
/// strategy, and the numbers are identical everywhere (the cost model
/// consults the catalog, not the executor).
#[test]
fn correlated_queries_render_three_way_costs_under_every_strategy() {
    let db = mem_db();
    let mut seen = Vec::new();
    for (name, strategy) in strategies() {
        let o = opts(&strategy, CacheMode::Off);
        for analyze in [false, true] {
            let report = db.explain_query(Q2, analyze, &o).unwrap();
            let sc = report.strategy_costs.unwrap_or_else(|| {
                panic!("[{name}, analyze={analyze}] correlated query lost its strategy costs")
            });
            for kind in [
                nsql_core::cost::StrategyKind::NestedIteration,
                nsql_core::cost::StrategyKind::Transform,
                nsql_core::cost::StrategyKind::Batched,
            ] {
                assert!(
                    sc.of(kind).is_finite() && sc.of(kind) >= 0.0,
                    "[{name}] {} cost must be a finite non-negative page count",
                    kind.name()
                );
            }
            let rendered = report.render_lines().join("\n");
            assert!(
                rendered.contains("strategy costs (three-way, page I/Os):"),
                "[{name}] rendered report lost the cost block"
            );
            assert!(
                rendered.contains(&format!("planner pick: {}", sc.pick().name())),
                "[{name}] rendered report lost the planner pick"
            );
            seen.push((sc.of(nsql_core::cost::StrategyKind::Batched), sc.pick()));
        }
    }
    // The cost block is a property of the query and catalog, not of the
    // pinned strategy or of whether the query ran.
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "three-way costs drifted across strategies/analyze: {seen:?}"
    );
}

/// An uncorrelated (type-A) query is still nested, so it still renders the
/// three-way block — with batched priced as a single inner evaluation
/// (`d = 1`), which can never beat evaluating the inner once via the
/// transform but must be finite and present. A flat query renders none.
#[test]
fn uncorrelated_nested_queries_render_costs_flat_queries_do_not() {
    let db = mem_db();
    for (name, strategy) in strategies() {
        let o = opts(&strategy, CacheMode::Off);
        for analyze in [false, true] {
            let report = db.explain_query(Q_TYPE_A, analyze, &o).unwrap();
            let sc = report.strategy_costs.unwrap_or_else(|| {
                panic!("[{name}, analyze={analyze}] uncorrelated nested query lost its cost block")
            });
            for kind in [
                nsql_core::cost::StrategyKind::NestedIteration,
                nsql_core::cost::StrategyKind::Transform,
                nsql_core::cost::StrategyKind::Batched,
            ] {
                assert!(
                    sc.of(kind).is_finite() && sc.of(kind) >= 0.0,
                    "[{name}] {} cost must be a finite non-negative page count",
                    kind.name()
                );
            }

            let flat = db.explain_query(Q_FLAT, analyze, &o).unwrap();
            assert!(
                flat.strategy_costs.is_none(),
                "[{name}, analyze={analyze}] flat query grew a cost block"
            );
        }
    }
}

/// EXPLAIN ANALYZE under the batched strategy actually executes: it
/// reports rows and I/O, and the rows match nested iteration's.
#[test]
fn batched_analyze_executes_and_matches_nested_iteration() {
    let db = mem_db();
    let ba = db.explain_query(Q2, true, &opts(&Strategy::Batched, CacheMode::Off)).unwrap();
    let ni = db
        .explain_query(Q2, true, &opts(&Strategy::NestedIteration, CacheMode::Off))
        .unwrap();
    assert_eq!(ba.rows, ni.rows, "batched ANALYZE returned a different cardinality");
    let io = ba.io.expect("ANALYZE reports I/O");
    assert!(io.total() > 0, "batched execution must be accounted");
    assert!(
        strategy_line(&ba.strategy).contains("batched"),
        "batched ANALYZE must label its strategy"
    );
}
