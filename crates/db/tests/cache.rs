//! End-to-end behavior of the cross-query result cache: exact hits are
//! invisible (results *and* counted I/O identical to cache-off), DML and
//! reopen invalidate precisely, a tiny byte budget evicts, and the
//! Rewrite mode's soundness check declines the COUNT-bug and exact-float
//! hazards with a stated reason.

use nsql_core::{JaVariant, UnnestOptions};
use nsql_db::{CacheMode, Database, QueryCache, QueryOptions, Strategy};
use nsql_testkit::TempDir;
use std::sync::Arc;

/// Kiessling's example database (the paper's Section 4 walkthrough).
const SETUP: &str = "CREATE TABLE PARTS (PNUM INT, QOH INT);
     CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
     INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
     INSERT INTO SUPPLY VALUES
       (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
       (10, 2, 8-10-81), (8, 5, 5-7-83);";

/// Kiessling's Q2 — the COUNT-bug query.
const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

/// Same shape with SUM — a type-JA query whose NEST-JA2 plan takes the
/// regular (inner) join, so its aggregate view does not preserve empty
/// groups.
const Q_SUM: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT SUM(QUAN) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

/// Same shape with AVG — the exact-float rewrite hazard.
const Q_AVG: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT AVG(QUAN) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

fn mem_db() -> Database {
    let mut db = Database::new();
    db.execute_script(SETUP).unwrap();
    db
}

fn opts(strategy: &Strategy, cache: CacheMode) -> QueryOptions {
    QueryOptions {
        strategy: strategy.clone(),
        cache,
        cold_start: true,
        threads: 1,
        ..QueryOptions::default()
    }
}

fn col0_sorted(rel: &nsql_types::Relation) -> Vec<String> {
    let mut v: Vec<String> = rel.tuples().iter().map(|t| t.get(0).to_string()).collect();
    v.sort();
    v
}

/// The cache must be observationally invisible: for both strategies, a
/// warm (hit-serving) run returns the same rows *and* the same counted
/// page I/O as every cache-off run.
#[test]
fn cache_is_invisible_to_results_and_io() {
    for strategy in [Strategy::NestedIteration, Strategy::Transform] {
        let db_off = mem_db();
        let db_on = mem_db();
        let off = opts(&strategy, CacheMode::Off);
        let on = opts(&strategy, CacheMode::On);
        let baseline = db_off.query_with(Q2, &off).unwrap();
        for round in 0..3 {
            let got = db_on.query_with(Q2, &on).unwrap();
            assert!(
                got.relation.same_bag(&baseline.relation),
                "{strategy:?} round {round}: rows diverge under cache"
            );
            assert_eq!(
                (got.io.reads, got.io.writes),
                (baseline.io.reads, baseline.io.writes),
                "{strategy:?} round {round}: counted I/O diverges under cache"
            );
        }
    }
}

#[test]
fn transform_second_run_is_a_replayed_hit() {
    let db = mem_db();
    let on = opts(&Strategy::Transform, CacheMode::On);
    let first = db.query_with(Q2, &on).unwrap();
    let log = first.explain.join("\n");
    assert!(log.contains("cache: mode on"), "{log}");
    assert!(log.contains("cache: miss"), "first run must record+publish:\n{log}");
    let second = db.query_with(Q2, &on).unwrap();
    let log = second.explain.join("\n");
    assert!(log.contains("cache: hit"), "second run must replay:\n{log}");
    assert!(second.relation.same_bag(&first.relation));
    assert_eq!((second.io.reads, second.io.writes), (first.io.reads, first.io.writes));
    assert!(db.result_cache().stats().hits > 0);
}

#[test]
fn nested_iteration_caches_inner_blocks_across_queries() {
    let db = mem_db();
    let on = opts(&Strategy::NestedIteration, CacheMode::On);
    let first = db.query_with(Q2, &on).unwrap();
    let log = first.explain.join("\n");
    assert!(log.contains("cache: mode on, inner-block"), "{log}");
    let second = db.query_with(Q2, &on).unwrap();
    let log = second.explain.join("\n");
    // Q2 probes one inner block per PARTS row; the second query answers
    // them all from the cache.
    assert!(log.contains("inner-block 3 hit(s), 0 miss(es)"), "{log}");
    assert!(second.relation.same_bag(&first.relation));
    assert_eq!((second.io.reads, second.io.writes), (first.io.reads, first.io.writes));
}

/// Satellite: an INSERT into the inner relation between two identical
/// queries bumps that table's generation; the second query must miss and
/// recompute against the new rows, on both strategies.
#[test]
fn insert_between_identical_queries_invalidates() {
    for strategy in [Strategy::NestedIteration, Strategy::Transform] {
        let mut db = mem_db();
        let on = opts(&strategy, CacheMode::On);
        let off = opts(&strategy, CacheMode::Off);
        let before = db.query_with(Q2, &on).unwrap();
        assert_eq!(col0_sorted(&before.relation), vec!["10", "8"]);
        // Warm the cache, then change the answer for part 8: one more
        // pre-1980 shipment makes COUNT = 1 ≠ QOH 0.
        let _ = db.query_with(Q2, &on).unwrap();
        db.execute_script("INSERT INTO SUPPLY VALUES (8, 1, 2-2-79)").unwrap();
        let got = db.query_with(Q2, &on).unwrap();
        let want = db.query_with(Q2, &off).unwrap();
        assert!(
            got.relation.same_bag(&want.relation),
            "{strategy:?}: stale cache entry served after INSERT"
        );
        assert_eq!(col0_sorted(&got.relation), vec!["10"], "{strategy:?}");
        assert_eq!((got.io.reads, got.io.writes), (want.io.reads, want.io.writes));
    }
}

/// Satellite: reopening a file-backed database (the crash-recovery path)
/// starts a fresh catalog epoch, so entries published by the previous
/// incarnation can never answer — even when the cache object itself is
/// shared across incarnations.
#[test]
fn reopen_starts_fresh_epoch_and_invalidates() {
    let dir = TempDir::new("nsql-cache-reopen");
    let shared = Arc::new(QueryCache::with_defaults());
    let on = opts(&Strategy::Transform, CacheMode::On);
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.set_result_cache(Arc::clone(&shared));
        db.execute_script(SETUP).unwrap();
        let _ = db.query_with(Q2, &on).unwrap();
        let warm = db.query_with(Q2, &on).unwrap();
        assert!(warm.explain.join("\n").contains("cache: hit"));
    }
    let mut db = Database::open(dir.path()).unwrap();
    db.set_result_cache(Arc::clone(&shared));
    let got = db.query_with(Q2, &on).unwrap();
    let log = got.explain.join("\n");
    assert!(
        log.contains("cache: miss"),
        "pre-reopen entry answered across an epoch boundary:\n{log}"
    );
    assert_eq!(col0_sorted(&got.relation), vec!["10", "8"]);
}

/// Satellite: a one-page byte budget forces eviction; the cache keeps
/// serving correct (if rarely hitting) answers.
#[test]
fn eviction_under_one_page_budget() {
    let mut db = mem_db();
    db.set_result_cache(Arc::new(QueryCache::new(512)));
    let on = opts(&Strategy::Transform, CacheMode::On);
    let off = opts(&Strategy::Transform, CacheMode::Off);
    for _ in 0..3 {
        let got = db.query_with(Q2, &on).unwrap();
        let want = db.query_with(Q2, &off).unwrap();
        assert!(got.relation.same_bag(&want.relation));
        assert_eq!((got.io.reads, got.io.writes), (want.io.reads, want.io.writes));
    }
    let stats = db.result_cache().stats();
    assert!(stats.evictions > 0, "512-byte budget never evicted: {stats:?}");
    assert!(stats.bytes <= 512, "budget exceeded: {stats:?}");
}

/// The COUNT-bug guard: a view materialized by Kim's buggy NEST-JA drops
/// empty groups. A later NEST-JA2 COUNT query (which must preserve them)
/// may not be answered from it — the rewrite check declines with the
/// count-bug reason and the query recomputes correctly.
#[test]
fn rewrite_declines_count_bug_sensitive_view() {
    let db = mem_db();
    let kim = QueryOptions {
        unnest: UnnestOptions { ja_variant: JaVariant::KimOriginal, ..UnnestOptions::default() },
        ..opts(&Strategy::Transform, CacheMode::On)
    };
    // Kim's answer is wrong (part 8 lost — the COUNT bug), but it does
    // publish an aggregate view over the same group/filter shape.
    let buggy = db.query_with(Q2, &kim).unwrap();
    assert_eq!(col0_sorted(&buggy.relation), vec!["10"]);
    let rewrite = opts(&Strategy::Transform, CacheMode::Rewrite);
    let got = db.query_with(Q2, &rewrite).unwrap();
    let log = got.explain.join("\n");
    assert!(
        log.contains("count-bug"),
        "expected a count-bug decline in explain:\n{log}"
    );
    assert_eq!(col0_sorted(&got.relation), vec!["10", "8"], "declined query must recompute");
    assert!(db.result_cache().stats().declines > 0);
}

/// The exact-float guard: AVG is never derived from a cached SUM view.
#[test]
fn rewrite_declines_avg_from_cached_sum() {
    let db = mem_db();
    let on = opts(&Strategy::Transform, CacheMode::On);
    let _ = db.query_with(Q_SUM, &on).unwrap();
    let rewrite = opts(&Strategy::Transform, CacheMode::Rewrite);
    let off = opts(&Strategy::Transform, CacheMode::Off);
    let got = db.query_with(Q_AVG, &rewrite).unwrap();
    let want = db.query_with(Q_AVG, &off).unwrap();
    let log = got.explain.join("\n");
    assert!(
        log.contains("exact-float"),
        "expected the exact-float decline in explain:\n{log}"
    );
    assert!(got.relation.same_bag(&want.relation));
}

/// An identical re-run under Rewrite mode is still served as an *exact*
/// replayed hit (rewrite subsumes exact), with identical I/O.
#[test]
fn rewrite_mode_still_serves_exact_hits() {
    let db = mem_db();
    let rw = opts(&Strategy::Transform, CacheMode::Rewrite);
    let first = db.query_with(Q2, &rw).unwrap();
    let second = db.query_with(Q2, &rw).unwrap();
    assert!(second.explain.join("\n").contains("cache: hit"));
    assert!(second.relation.same_bag(&first.relation));
    assert_eq!((second.io.reads, second.io.writes), (first.io.reads, first.io.writes));
}

/// EXPLAIN ANALYZE under an enabled cache carries the lifetime cache
/// counters as an observability event, and plain EXPLAIN renders the
/// cache-mode header for both strategies (the per-strategy parity fix).
#[test]
fn explain_renders_cache_lines_for_both_strategies() {
    let db = mem_db();
    for strategy in [Strategy::NestedIteration, Strategy::Transform] {
        let on = opts(&strategy, CacheMode::On);
        let plain = db.explain_query(Q2, false, &on).unwrap();
        let text = plain.render_lines().join("\n");
        assert!(text.contains("cache: mode on"), "{strategy:?} plain EXPLAIN:\n{text}");
        let analyzed = db.explain_query(Q2, true, &on).unwrap();
        let obs = analyzed.obs.expect("ANALYZE collects observability");
        assert!(
            obs.events.iter().any(|e| e.contains("cache:") && e.contains("lifetime")),
            "{strategy:?}: no cache-stats event in {:?}",
            obs.events
        );
    }
}
