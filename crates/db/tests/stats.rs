//! End-to-end behavior of the engine-wide statistics subsystem: the
//! `nsql_stat_*` system views answer plain and *nested* SELECTs under both
//! strategies, fingerprint aggregation counts calls/errors/refusals with
//! percentiles that match an exact-sort oracle, the slow-query log captures
//! offenders with their rendered EXPLAIN, index probes are attributed to
//! their table, the lifetime cache counters have one source of truth, and
//! per-column distinct-count statistics survive a durable reopen.

use nsql_db::{CacheMode, Database, IndexUse, QueryOptions, Strategy};
use nsql_obs::stats::{LatencyHistogram, StatementSample};
use nsql_testkit::TempDir;
use nsql_types::Value;

/// Kiessling's example database (the paper's Section 4 walkthrough).
const SETUP: &str = "CREATE TABLE PARTS (PNUM INT, QOH INT);
     CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
     INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
     INSERT INTO SUPPLY VALUES
       (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
       (10, 2, 8-10-81), (8, 5, 5-7-83);";

/// Kiessling's Q2 — the COUNT-bug query.
const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
    (SELECT COUNT(SHIPDATE) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

fn mem_db() -> Database {
    let mut db = Database::new();
    db.execute_script(SETUP).unwrap();
    db
}

fn ints(rel: &nsql_types::Relation, col: usize) -> Vec<i64> {
    rel.tuples()
        .iter()
        .map(|t| match t.get(col) {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        })
        .collect()
}

/// The acceptance query: `SELECT query, calls, p99_us FROM
/// nsql_stat_statements` works end-to-end after a workload, and the
/// aggregates reflect it.
#[test]
fn stat_statements_is_queryable_with_correct_aggregates() {
    let db = mem_db();
    for _ in 0..3 {
        db.query(Q2).unwrap();
    }
    let rel = db
        .query("SELECT query, calls, p99_us FROM nsql_stat_statements")
        .unwrap();
    let fp = nsql_analyzer::query_fingerprint(&nsql_sql::parse_query(Q2).unwrap());
    let row = rel
        .tuples()
        .iter()
        .find(|t| t.get(0) == &Value::Str(fp.clone()))
        .unwrap_or_else(|| panic!("no row for {fp} in {rel}"));
    assert_eq!(row.get(1), &Value::Int(3), "three calls");
    match row.get(2) {
        Value::Int(p99) => assert!(*p99 > 0, "p99 must be positive"),
        other => panic!("p99_us not an int: {other:?}"),
    }
}

/// System views compose: a stat view works as the *inner* block of a
/// nested query, under both nested iteration and transform.
#[test]
fn stat_views_work_as_nested_inner_blocks() {
    let db = mem_db();
    db.query(Q2).unwrap();
    // Type-A inner block over a stat view: tables scanned at least as
    // often as the busiest statement was called.
    let nested = "SELECT TABLE_NAME FROM NSQL_STAT_TABLES \
        WHERE SCANS >= (SELECT MAX(CALLS) FROM NSQL_STAT_STATEMENTS)";
    for strategy in [Strategy::NestedIteration, Strategy::Transform, Strategy::Batched] {
        let opts = QueryOptions { strategy, cold_start: true, ..Default::default() };
        let out = db.run_query(&nsql_sql::parse_query(nested).unwrap(), &opts).unwrap();
        let names: Vec<String> =
            out.relation.tuples().iter().map(|t| t.get(0).to_string()).collect();
        assert!(
            names.iter().any(|n| n.contains("PARTS")),
            "{strategy:?}: PARTS scanned by Q2 must qualify, got {names:?}"
        );
    }
}

/// Percentiles served through SQL match a nearest-rank exact-sort oracle
/// mapped through the histogram's bucket upper bounds.
#[test]
fn percentiles_match_exact_sort_oracle_end_to_end() {
    let db = mem_db();
    let samples: Vec<u64> = vec![3, 17, 90, 1000, 1001, 4096, 70000, 3, 90, 255];
    for &micros in &samples {
        db.stats().record_statement(&StatementSample {
            fingerprint: "SYNTHETIC".into(),
            micros,
            reads: 0,
            writes: 0,
            strategy: "transform".into(),
            exec_mode: "row".into(),
            error: false,
            refusals: 0,
        });
    }
    let rel = db
        .query(
            "SELECT P50_US, P95_US, P99_US FROM NSQL_STAT_STATEMENTS \
             WHERE QUERY = 'SYNTHETIC'",
        )
        .unwrap();
    assert_eq!(rel.len(), 1);
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    for (col, p) in [(0usize, 50u64), (1, 95), (2, 99)] {
        // Nearest-rank oracle, then map the chosen sample through its
        // bucket's upper bound (the histogram's reporting granularity).
        let rank = ((sorted.len() as u128 * p as u128).div_ceil(100)).max(1) as usize;
        let expect =
            LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(sorted[rank - 1]));
        assert_eq!(
            ints(&rel, col)[0],
            i64::try_from(expect).unwrap(),
            "p{p} mismatch against oracle"
        );
    }
}

/// Errors are aggregated per fingerprint too (a statement that fails
/// validation still lands in the registry), and a transform refusal is
/// counted separately from ordinary errors.
#[test]
fn errors_and_refusals_are_counted() {
    let db = mem_db();
    // Unknown column: fails semantic analysis under any strategy.
    let bad = "SELECT NOPE FROM PARTS WHERE QOH = 7";
    assert!(db.query(bad).is_err());
    let snap = db.stats().snapshot();
    let fp = nsql_analyzer::query_fingerprint(&nsql_sql::parse_query(bad).unwrap());
    let s = snap.statements.iter().find(|s| s.query == fp).expect("error recorded");
    assert_eq!((s.calls, s.errors, s.refusals), (1, 1, 0));

    // ORDER BY in a nested block: parses and validates, but the transform
    // engine refuses the shape — counted as error *and* refusal.
    let refused = "SELECT PNUM FROM PARTS WHERE QOH IN \
        (SELECT QUAN FROM SUPPLY ORDER BY QUAN)";
    let opts = QueryOptions { strategy: Strategy::Transform, ..Default::default() };
    let q = nsql_sql::parse_query(refused).unwrap();
    if db.run_query(&q, &opts).is_err() {
        let snap = db.stats().snapshot();
        let fp = nsql_analyzer::query_fingerprint(&q);
        let s = snap.statements.iter().find(|s| s.query == fp).expect("refusal recorded");
        assert_eq!(s.calls, 1);
        assert_eq!(s.errors, 1, "refusal is also an error: {s:?}");
        assert_eq!(s.refusals, 1, "transform refusal must be counted: {s:?}");
    }
}

/// The slow-query log captures threshold crossers with SQL, fingerprint,
/// I/O, and the rendered EXPLAIN; `Some(0)` logs everything.
#[test]
fn slow_query_log_captures_explain() {
    let db = mem_db();
    let opts = QueryOptions { slow_query_ms: Some(0), cold_start: true, ..Default::default() };
    db.run_query(&nsql_sql::parse_query(Q2).unwrap(), &opts).unwrap();
    let slow = db.stats().slow_queries();
    assert_eq!(slow.len(), 1, "threshold 0 logs every statement");
    let entry = &slow[0];
    assert_eq!(entry.seq, 1);
    assert!(entry.sql.starts_with("SELECT PNUM FROM PARTS"), "{}", entry.sql);
    assert!(entry.fingerprint.contains('?'), "literals masked: {}", entry.fingerprint);
    assert!(entry.reads > 0, "Q2 reads pages");
    assert!(
        entry.explain.iter().any(|l| l.contains("strategy:")),
        "rendered EXPLAIN captured: {:?}",
        entry.explain
    );
    // Unset threshold (and no NSQL_SLOW_QUERY_MS): nothing further logged.
    db.run_query(&nsql_sql::parse_query(Q2).unwrap(), &QueryOptions::default()).unwrap();
    assert_eq!(db.stats().slow_queries().len(), 1);
}

/// Index probes are attributed to the probed table in `nsql_stat_tables`.
#[test]
fn index_probes_are_attributed() {
    let mut db = mem_db();
    db.catalog_mut().create_index("SUPPLY", "PNUM").unwrap();
    let before: u64 = {
        let rel = db
            .query("SELECT INDEX_PROBES FROM NSQL_STAT_TABLES WHERE TABLE_NAME = 'SUPPLY'")
            .unwrap();
        ints(&rel, 0)[0] as u64
    };
    let opts = QueryOptions {
        strategy: Strategy::Transform,
        index_use: IndexUse::Prefer,
        cold_start: true,
        ..Default::default()
    };
    // Flat equi-join probing SUPPLY's PNUM index once per PARTS row.
    let join = "SELECT QUAN FROM PARTS, SUPPLY WHERE PARTS.PNUM = SUPPLY.PNUM";
    db.run_query(&nsql_sql::parse_query(join).unwrap(), &opts).unwrap();
    let rel = db
        .query("SELECT INDEX_PROBES FROM NSQL_STAT_TABLES WHERE TABLE_NAME = 'SUPPLY'")
        .unwrap();
    let after = ints(&rel, 0)[0] as u64;
    assert!(after > before, "index path under Prefer must record probes ({before} -> {after})");
}

/// One source of truth for cache counters: the `nsql_stat_cache` view, the
/// registry mirror, and `QueryCache::stats()` agree after a hit-serving
/// workload.
#[test]
fn cache_counters_have_one_source_of_truth() {
    let db = mem_db();
    let opts = QueryOptions { cache: CacheMode::On, cold_start: true, ..Default::default() };
    let q = nsql_sql::parse_query(Q2).unwrap();
    db.run_query(&q, &opts).unwrap(); // cold: misses populate
    db.run_query(&q, &opts).unwrap(); // warm: hits serve
    let truth = db.result_cache().stats();
    assert!(truth.hits > 0, "warm run must hit: {truth:?}");
    let mirrored = db.stats().cache();
    assert_eq!(
        (mirrored.hits, mirrored.misses, mirrored.entries),
        (truth.hits, truth.misses, truth.entries),
        "registry mirror diverged from QueryCache::stats()"
    );
    let rel = db.query("SELECT HITS, MISSES, ENTRIES FROM NSQL_STAT_CACHE").unwrap();
    assert_eq!(rel.len(), 1);
    let row = ints(&rel, 0)[0] as u64;
    // The view was refreshed at *this* statement's start, after the warm
    // run's record_cache — it must serve the same lifetime hits.
    assert_eq!(row, truth.hits, "view diverged from QueryCache::stats()");
}

/// `nsql_stat_storage` reports live storage counters, including WAL
/// commits and checkpoints on a durable backend.
#[test]
fn stat_storage_reports_durable_counters() {
    let dir = TempDir::new("nsql-stats-storage");
    let mut db = Database::open_with(8, 256, dir.path()).unwrap();
    db.execute_script(SETUP).unwrap();
    let rel = db
        .query("SELECT READS, WRITES, DURABLE, COMMITS FROM NSQL_STAT_STORAGE")
        .unwrap();
    assert_eq!(rel.len(), 1);
    let row = &rel.tuples()[0];
    assert_eq!(row.get(2), &Value::Int(1), "durable backend");
    match (row.get(1), row.get(3)) {
        (Value::Int(writes), Value::Int(commits)) => {
            assert!(*writes > 0, "setup wrote pages");
            assert!(*commits >= 4, "each DDL/DML statement commits: {commits}");
        }
        other => panic!("unexpected row {other:?}"),
    }
}

/// Per-column distinct-count statistics survive a durable restart: the
/// versioned catalog snapshot in the WAL commit record carries them.
#[test]
fn distinct_counts_survive_reopen() {
    let dir = TempDir::new("nsql-stats-distinct");
    {
        let mut db = Database::open_with(8, 256, dir.path()).unwrap();
        db.execute_script(SETUP).unwrap();
        // PARTS.PNUM has 3 distinct values, SUPPLY.PNUM has 3, QUAN has 4.
        assert_eq!(db.catalog().distinct_count("PARTS", 0), Some(3));
        assert_eq!(db.catalog().distinct_count("SUPPLY", 1), Some(4));
    }
    let db = Database::open_with(8, 256, dir.path()).unwrap();
    assert_eq!(
        db.catalog().distinct_count("PARTS", 0),
        Some(3),
        "distinct counts must come back from the snapshot"
    );
    assert_eq!(db.catalog().distinct_count("SUPPLY", 1), Some(4));
    // And the restored database keeps collecting into a fresh registry.
    db.query(Q2).unwrap();
    assert!(!db.stats().snapshot().statements.is_empty());
}

/// With collection disabled the views still answer (zero-filled tables
/// rows, empty statements) — turning stats off never breaks a dashboard
/// query, it only stops the counters.
#[test]
fn disabled_registry_keeps_views_queryable() {
    let db = mem_db();
    db.stats().set_enabled(false);
    db.query(Q2).unwrap();
    let rel = db.query("SELECT QUERY, CALLS FROM NSQL_STAT_STATEMENTS").unwrap();
    assert_eq!(rel.len(), 0, "disabled registry aggregates nothing");
    let rel = db
        .query("SELECT SCANS FROM NSQL_STAT_TABLES WHERE TABLE_NAME = 'PARTS'")
        .unwrap();
    assert_eq!(rel.len(), 1, "base tables still listed");
}
