//! Unified error type for the facade.

use std::fmt;

/// Anything that can go wrong between SQL text and a result table.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Lexing/parsing failure.
    Parse(nsql_sql::ParseError),
    /// Semantic analysis failure.
    Analyze(nsql_analyzer::AnalyzeError),
    /// Transformation failure (query outside the supported class).
    Transform(nsql_core::TransformError),
    /// Execution failure.
    Engine(nsql_engine::EngineError),
    /// Value-level failure.
    Type(nsql_types::TypeError),
    /// Catalog-level failure (duplicate table, unknown table, …).
    Catalog(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Analyze(e) => write!(f, "{e}"),
            DbError::Transform(e) => write!(f, "{e}"),
            DbError::Engine(e) => write!(f, "{e}"),
            DbError::Type(e) => write!(f, "{e}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<nsql_sql::ParseError> for DbError {
    fn from(e: nsql_sql::ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<nsql_analyzer::AnalyzeError> for DbError {
    fn from(e: nsql_analyzer::AnalyzeError) -> Self {
        DbError::Analyze(e)
    }
}

impl From<nsql_core::TransformError> for DbError {
    fn from(e: nsql_core::TransformError) -> Self {
        DbError::Transform(e)
    }
}

impl From<nsql_engine::EngineError> for DbError {
    fn from(e: nsql_engine::EngineError) -> Self {
        DbError::Engine(e)
    }
}

impl From<nsql_types::TypeError> for DbError {
    fn from(e: nsql_types::TypeError) -> Self {
        DbError::Type(e)
    }
}
