//! The `Database` facade.

use crate::catalog::Catalog;

use crate::options::{QueryOptions, Strategy};
use crate::plan_exec::PlanExecutor;
use crate::Result;
use nsql_analyzer::{query_tree, validate_query, QueryTree};
use nsql_core::{transform_query, TransformPlan};
use nsql_engine::{Exec, NestedIter};
use nsql_sql::{parse_statements, QueryBlock, Statement};
use nsql_storage::{IoStats, Storage};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple};

/// Result of a query plus its observability data.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The rows.
    pub relation: Relation,
    /// Page I/Os consumed by this query (reads + writes).
    pub io: IoStats,
    /// EXPLAIN-style description: transformation trace, temp-table sizes,
    /// and physical join decisions.
    pub explain: Vec<String>,
}

/// An embedded single-session database over the simulated storage engine.
pub struct Database {
    catalog: Catalog,
}

impl Database {
    /// Database over a default-sized storage (`B = 6` buffer pages,
    /// 512-byte pages).
    pub fn new() -> Database {
        Database { catalog: Catalog::new(Storage::with_defaults()) }
    }

    /// Database with an explicit buffer size and page size.
    pub fn with_storage(buffer_pages: usize, page_size: usize) -> Database {
        Database { catalog: Catalog::new(Storage::new(buffer_pages, page_size)) }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (bulk-loading fixtures and workloads).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The storage handle (I/O counters, buffer control).
    pub fn storage(&self) -> &Storage {
        self.catalog.storage()
    }

    /// Run a `;`-separated SQL script: `CREATE TABLE` / `INSERT` /
    /// `SELECT`. Returns the result of the last SELECT, if any; SELECTs use
    /// the default (transform, cost-based) options.
    pub fn execute_script(&mut self, sql: &str) -> Result<Option<Relation>> {
        let mut last = None;
        for stmt in parse_statements(sql)? {
            match stmt {
                Statement::CreateTable { name, columns } => {
                    let schema = Schema::new(
                        columns.iter().map(|(n, t)| Column::new(n, *t)).collect(),
                    );
                    self.catalog.create_table(&name, schema)?;
                }
                Statement::Insert { table, rows } => {
                    let tuples: Vec<Tuple> =
                        rows.into_iter().map(Tuple::new).collect();
                    self.catalog.insert(&table, tuples)?;
                }
                Statement::Select(q) => {
                    last = Some(self.run_query(&q, &QueryOptions::default())?.relation);
                }
            }
        }
        Ok(last)
    }

    /// Run one SELECT with default options.
    pub fn query(&self, sql: &str) -> Result<Relation> {
        Ok(self.query_with(sql, &QueryOptions::default())?.relation)
    }

    /// Run one SELECT under explicit options, reporting I/O and EXPLAIN.
    pub fn query_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryOutcome> {
        let q = parse_one_select(sql)?;
        self.run_query(&q, opts)
    }

    /// Run a parsed query block under explicit options.
    pub fn run_query(&self, q: &QueryBlock, opts: &QueryOptions) -> Result<QueryOutcome> {
        validate_query(&self.catalog, q)?;
        let storage = self.catalog.storage();
        if opts.cold_start {
            storage.clear_buffer();
        }
        let before = storage.io_stats();
        let threads = if opts.threads == 0 {
            nsql_exec_par::threads_from_env()
        } else {
            opts.threads
        };
        let mut explain = Vec::new();
        let relation = match opts.strategy {
            Strategy::NestedIteration => {
                explain.push("strategy: nested iteration (System R)".to_string());
                let evaluator = NestedIter::new(&self.catalog, storage.clone());
                evaluator.eval_query_threads(q, threads)?
            }
            Strategy::Transform => {
                let mut unnest = opts.unnest.clone();
                unnest.preserve_duplicates |=
                    opts.duplicates == crate::options::DuplicateSemantics::ForceDistinct;
                let plan = transform_query(&self.catalog, q, &unnest)?;
                explain.push(format!(
                    "strategy: transform ({} temp table{}), join policy: {}",
                    plan.temp_count(),
                    if plan.temp_count() == 1 { "" } else { "s" },
                    opts.join_policy.name()
                ));
                explain.extend(plan.trace.iter().cloned());
                explain.push(format!("canonical: {}", nsql_sql::print_query(&plan.canonical)));
                let exec = Exec::with_threads(storage.clone(), threads);
                let mut pe = PlanExecutor::new(exec, &self.catalog, opts.join_policy);
                let rel = pe
                    .execute_transform_plan(&plan, plan.needs_distinct_for_semantics)?;
                explain.extend(pe.log.iter().cloned());
                if !opts.keep_temps {
                    pe.drop_temps();
                }
                rel
            }
        };
        let io = storage.io_stats().since(&before);
        Ok(QueryOutcome { relation, io, explain })
    }

    /// Transform a query without executing it (EXPLAIN-only).
    pub fn plan(&self, sql: &str) -> Result<TransformPlan> {
        let q = parse_one_select(sql)?;
        validate_query(&self.catalog, &q)?;
        Ok(transform_query(&self.catalog, &q, &Default::default())?)
    }

    /// The Figure-2 query tree of a SQL query.
    pub fn query_tree(&self, sql: &str) -> Result<QueryTree> {
        let q = parse_one_select(sql)?;
        Ok(query_tree(&self.catalog, &q)?)
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

fn parse_one_select(sql: &str) -> Result<QueryBlock> {
    Ok(nsql_sql::parse_query(sql)?)
}

/// Convenience constructor for building schemas in examples and tests.
pub fn col(name: &str, ty: ColumnType) -> Column {
    Column::new(name, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use crate::options::JoinPolicy;

    fn kiessling_db() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE PARTS (PNUM INT, QOH INT);
             CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
             INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
             INSERT INTO SUPPLY VALUES
               (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
               (10, 2, 8-10-81), (8, 5, 5-7-83);",
        )
        .unwrap();
        db
    }

    const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
        (SELECT COUNT(SHIPDATE) FROM SUPPLY \
         WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

    #[test]
    fn script_roundtrip() {
        let db = kiessling_db();
        let r = db.query("SELECT PNUM FROM PARTS WHERE QOH > 0").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn nested_iteration_matches_paper() {
        let db = kiessling_db();
        let out = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
        let mut vals: Vec<String> =
            out.relation.tuples().iter().map(|t| t.get(0).to_string()).collect();
        vals.sort();
        assert_eq!(vals, vec!["10", "8"]);
        assert!(out.io.total() > 0, "I/O must be accounted");
    }

    #[test]
    fn ja2_transform_matches_nested_iteration_on_q2() {
        let db = kiessling_db();
        let ni = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
        for policy in [
            JoinPolicy::ForceNestedLoop,
            JoinPolicy::ForceMergeJoin,
            JoinPolicy::CostBased,
        ] {
            let opts = QueryOptions {
                strategy: Strategy::Transform,
                join_policy: policy,
                cold_start: true,
                ..Default::default()
            };
            let tr = db.query_with(Q2, &opts).unwrap();
            assert!(
                tr.relation.same_bag(&ni.relation),
                "policy {policy:?}:\nNI:\n{}\nTR:\n{}\nexplain: {:#?}",
                ni.relation,
                tr.relation,
                tr.explain
            );
        }
    }

    #[test]
    fn buggy_kim_variant_loses_part_8_on_q2() {
        // The COUNT bug: COUNT can never be zero in Kim's temporary, so
        // part 8 (QOH = 0, no qualifying shipments) is lost; part 10
        // (QOH = 1 = its count) survives.
        let db = kiessling_db();
        let opts = QueryOptions {
            strategy: Strategy::Transform,
            unnest: nsql_core::UnnestOptions {
                ja_variant: nsql_core::JaVariant::KimOriginal,
                ..Default::default()
            },
            cold_start: true,
            ..Default::default()
        };
        let out = db.query_with(Q2, &opts).unwrap();
        let vals: Vec<String> =
            out.relation.tuples().iter().map(|t| t.get(0).to_string()).collect();
        assert_eq!(vals, vec!["10"], "{}", out.relation);
    }

    #[test]
    fn explain_shows_pipeline() {
        let db = kiessling_db();
        let out = db.query_with(Q2, &QueryOptions::transformed_merge()).unwrap();
        let text = out.explain.join("\n");
        assert!(text.contains("NEST-JA2"), "{text}");
        assert!(text.contains("canonical:"), "{text}");
        assert!(text.contains("merge join"), "{text}");
    }

    #[test]
    fn query_tree_renders() {
        let db = kiessling_db();
        let t = db.query_tree(Q2).unwrap();
        assert_eq!(t.block_count(), 2);
        assert!(t.render().contains("type-JA"));
    }

    #[test]
    fn unknown_table_is_caught_before_execution() {
        let db = Database::new();
        assert!(matches!(
            db.query("SELECT X FROM NOPE"),
            Err(DbError::Analyze(_))
        ));
    }
}
