//! The `Database` facade.

use crate::catalog::Catalog;

use crate::explain::{ObsReport, TempStat};
use crate::options::{Durability, QueryOptions, Strategy};
use crate::plan_exec::PlanExecutor;
use crate::Result;
use nsql_analyzer::{query_fingerprint, query_tree, validate_query, QueryTree};
use nsql_core::{transform_query, transform_query_traced, TransformPlan};
use nsql_engine::{Exec, ExecObs, NestedIter};
use nsql_obs::stats::{CacheCounters, SlowQuery, StatementSample, StatsRegistry};
use nsql_obs::{IoDelta, SpanNode, Tracer};
use nsql_sql::{parse_statements, QueryBlock, Statement};
use nsql_storage::{IoStats, RecoveryReport, Storage};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Result of a query plus its observability data.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The rows.
    pub relation: Relation,
    /// Page I/Os consumed by this query (reads + writes).
    pub io: IoStats,
    /// EXPLAIN-style description: transformation trace, temp-table sizes,
    /// and physical join decisions.
    pub explain: Vec<String>,
    /// Sizes of the materialized temporaries (transform strategy only) —
    /// the measured inputs to the Section-7 cost comparison.
    pub temps: Vec<TempStat>,
    /// Spans, per-operator metrics, and events, when
    /// [`QueryOptions::observe`] was set.
    pub obs: Option<ObsReport>,
}

/// What [`Database::open`] found and did while bringing a file-backed
/// database back up: the storage layer's crash-recovery report, catalog
/// shape, and the recovery lifecycle spans.
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// WAL/page-file recovery outcome from the storage layer.
    pub recovery: RecoveryReport,
    /// Tables restored from the committed catalog snapshot.
    pub tables: usize,
    /// B+tree indexes restored from the snapshot.
    pub indexes: usize,
    /// Lifecycle spans: `"open"` with children `"open: recover store"` and
    /// `"open: restore catalog"`.
    pub spans: Vec<SpanNode>,
}

/// Deletes a per-process data directory (created for `NSQL_DURABILITY=file`)
/// when the owning [`Database`] goes away, so figure/table binaries leave no
/// droppings behind.
struct OwnedDataDir(PathBuf);

impl Drop for OwnedDataDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Distinguishes data dirs created by this process across repeated
/// `Database::new()` calls within it.
static DATA_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// An embedded single-session database over the simulated storage engine.
pub struct Database {
    catalog: Catalog,
    cache: Arc<nsql_cache::QueryCache>,
    open_report: Option<OpenReport>,
    _data_dir: Option<OwnedDataDir>,
}

impl Database {
    /// Database over a default-sized storage (`B = 6` buffer pages,
    /// 512-byte pages). Honors `NSQL_DURABILITY` (see
    /// [`Durability::from_env`]): under `file`, the database sits on a
    /// fresh file-backed store in a private directory that is removed when
    /// the database drops — page-I/O counts are identical to the memory
    /// backend by construction, so experiment output does not change.
    pub fn new() -> Database {
        Self::from_env_durability(Storage::with_defaults, |dir| {
            Storage::file_backed(
                nsql_storage::DEFAULT_BUFFER_PAGES,
                nsql_storage::DEFAULT_PAGE_SIZE,
                dir,
            )
        })
    }

    /// Database with an explicit buffer size and page size (same
    /// `NSQL_DURABILITY` handling as [`Database::new`]).
    pub fn with_storage(buffer_pages: usize, page_size: usize) -> Database {
        Self::from_env_durability(
            || Storage::new(buffer_pages, page_size),
            |dir| Storage::file_backed(buffer_pages, page_size, dir),
        )
    }

    fn from_env_durability(
        memory: impl FnOnce() -> Storage,
        file: impl FnOnce(&Path) -> std::result::Result<
            (Storage, RecoveryReport),
            nsql_storage::StorageError,
        >,
    ) -> Database {
        match Durability::from_env() {
            Durability::Memory => Database::assemble(Catalog::new(memory()), None, None),
            Durability::File(base) => {
                // Bare `NSQL_DURABILITY=file` means "same engine, durable
                // backend": each Database gets a private subdirectory so
                // concurrent instances never share a store, removed on drop.
                let seq = DATA_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
                let dir = if std::env::var("NSQL_DURABILITY")
                    .map(|v| v.eq_ignore_ascii_case("file"))
                    .unwrap_or(false)
                {
                    let unique =
                        format!("nsql-data-{}-{}", std::process::id(), seq);
                    (base.join(unique), true)
                } else {
                    (base, false)
                };
                let (path, owned) = dir;
                let (storage, _report) = file(&path).unwrap_or_else(|e| {
                    panic!(
                        "NSQL_DURABILITY=file: cannot open store at {}: {e}",
                        path.display()
                    )
                });
                Database::assemble(
                    Catalog::new(storage),
                    None,
                    owned.then_some(OwnedDataDir(path)),
                )
            }
        }
    }

    /// Assemble a database around `catalog`, attaching a fresh cross-query
    /// result cache (default byte budget) to both.
    fn assemble(
        catalog: Catalog,
        open_report: Option<OpenReport>,
        data_dir: Option<OwnedDataDir>,
    ) -> Database {
        let mut db = Database {
            catalog,
            cache: Arc::new(nsql_cache::QueryCache::with_defaults()),
            open_report,
            _data_dir: data_dir,
        };
        db.catalog.set_result_cache(Arc::clone(&db.cache));
        db
    }

    /// Replace the cross-query result cache — tests and multi-database
    /// setups share one cache (and its byte budget) across instances;
    /// epoch stamps keep entries from crossing catalog incarnations.
    pub fn set_result_cache(&mut self, cache: Arc<nsql_cache::QueryCache>) {
        self.cache = Arc::clone(&cache);
        self.catalog.set_result_cache(cache);
    }

    /// The cross-query result cache.
    pub fn result_cache(&self) -> &Arc<nsql_cache::QueryCache> {
        &self.cache
    }

    /// Open (or create) a file-backed database rooted at `dir` with default
    /// buffer/page sizes, running crash recovery and restoring the catalog
    /// from the last committed snapshot.
    pub fn open(dir: &Path) -> Result<Database> {
        Self::open_with(
            nsql_storage::DEFAULT_BUFFER_PAGES,
            nsql_storage::DEFAULT_PAGE_SIZE,
            dir,
        )
    }

    /// [`Database::open`] with explicit buffer and page sizes. (`page_size`
    /// only seeds a fresh store; an existing store keeps its recorded page
    /// size.) The [`OpenReport`] is retained on the database —
    /// [`Database::open_report`].
    pub fn open_with(
        buffer_pages: usize,
        page_size: usize,
        dir: &Path,
    ) -> Result<Database> {
        let tracer = Tracer::enabled();
        let outer = tracer.begin("open");
        let span = tracer.begin("open: recover store");
        let (storage, recovery) = Storage::file_backed(buffer_pages, page_size, dir)
            .map_err(|e| crate::error::DbError::Engine(e.into()))?;
        tracer.end(span);
        let span = tracer.begin("open: restore catalog");
        let snapshot = storage.durable().and_then(|s| s.committed_meta());
        let catalog = Catalog::restore(storage, snapshot.as_deref())?;
        tracer.end(span);
        tracer.end(outer);
        let report = OpenReport {
            recovery,
            tables: catalog.table_names().len(),
            indexes: catalog.index_count(),
            spans: tracer.finish(),
        };
        Ok(Database::assemble(catalog, Some(report), None))
    }

    /// The recovery/restore report, when this database came up via
    /// [`Database::open`].
    pub fn open_report(&self) -> Option<&OpenReport> {
        self.open_report.as_ref()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (bulk-loading fixtures and workloads).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The storage handle (I/O counters, buffer control).
    pub fn storage(&self) -> &Storage {
        self.catalog.storage()
    }

    /// The engine-wide cumulative statistics registry (shared with the
    /// catalog, which serves it through the `nsql_stat_*` system views).
    pub fn stats(&self) -> Arc<StatsRegistry> {
        self.catalog.stats_registry()
    }

    /// Run a `;`-separated SQL script: `CREATE TABLE` / `INSERT` /
    /// `SELECT`. Returns the result of the last SELECT, if any; SELECTs use
    /// the default (transform, cost-based) options.
    pub fn execute_script(&mut self, sql: &str) -> Result<Option<Relation>> {
        let mut last = None;
        for stmt in parse_statements(sql)? {
            match stmt {
                Statement::CreateTable { name, columns } => {
                    let schema = Schema::new(
                        columns.iter().map(|(n, t)| Column::new(n, *t)).collect(),
                    );
                    self.catalog.create_table(&name, schema)?;
                }
                Statement::Insert { table, rows } => {
                    let tuples: Vec<Tuple> =
                        rows.into_iter().map(Tuple::new).collect();
                    self.catalog.insert(&table, tuples)?;
                }
                Statement::Select(q) => {
                    last = Some(self.run_query(&q, &QueryOptions::default())?.relation);
                }
                Statement::Explain { analyze, query } => {
                    let report =
                        self.explain_block(&query, analyze, &QueryOptions::default())?;
                    let rows: Vec<Tuple> = report
                        .render_lines()
                        .into_iter()
                        .map(|l| Tuple::new(vec![Value::Str(l)]))
                        .collect();
                    let schema =
                        Schema::new(vec![Column::new("EXPLAIN", ColumnType::Str)]);
                    last = Some(Relation::new(schema, rows)?);
                }
            }
        }
        Ok(last)
    }

    /// Run one SELECT with default options.
    pub fn query(&self, sql: &str) -> Result<Relation> {
        Ok(self.query_with(sql, &QueryOptions::default())?.relation)
    }

    /// Run one SELECT under explicit options, reporting I/O and EXPLAIN.
    pub fn query_with(&self, sql: &str, opts: &QueryOptions) -> Result<QueryOutcome> {
        let (tracer, obs) = self.obs_handles(opts);
        let span = tracer.begin("parse");
        let q = parse_one_select(sql)?;
        tracer.end(span);
        self.run_observed(&q, opts, tracer, obs)
    }

    /// Run a parsed query block under explicit options.
    pub fn run_query(&self, q: &QueryBlock, opts: &QueryOptions) -> Result<QueryOutcome> {
        let (tracer, obs) = self.obs_handles(opts);
        self.run_observed(q, opts, tracer, obs)
    }

    /// Tracer + executor observability for one query, per
    /// [`QueryOptions::observe`]. The tracer's I/O probe is a pure load of
    /// the storage counters — observation never perturbs what it measures.
    fn obs_handles(&self, opts: &QueryOptions) -> (Tracer, Option<ExecObs>) {
        if !opts.observe {
            return (Tracer::disabled(), None);
        }
        let storage = self.storage().clone();
        let tracer = Tracer::with_probe(move || {
            let s = storage.io_snapshot();
            IoDelta { reads: s.reads, writes: s.writes, hits: s.hits, misses: s.misses }
        });
        (tracer, Some(ExecObs::new()))
    }

    /// Statement-level wrapper around [`Database::run_strategy`]: refreshes
    /// any referenced `nsql_stat_*` views to a consistent snapshot, runs
    /// the query, then folds the completed call (success *or* failure) into
    /// the statistics registry and — past the configured threshold — the
    /// slow-query log. Every observation here is a pure load of storage
    /// counters or registry side-state: counted I/O never moves.
    fn run_observed(
        &self,
        q: &QueryBlock,
        opts: &QueryOptions,
        tracer: Tracer,
        exec_obs: Option<ExecObs>,
    ) -> Result<QueryOutcome> {
        let registry = self.catalog.stats_registry();
        if !registry.enabled() {
            let mut refusals = 0;
            return self.run_strategy(q, opts, &tracer, &exec_obs, &mut refusals);
        }
        // One snapshot per statement: every scan of a stat view inside this
        // statement (nested blocks included) sees the same materialization.
        let referenced = q.referenced_tables();
        self.catalog.refresh_stat_views(referenced.iter().map(String::as_str));
        let t0 = Instant::now();
        let io0 = self.catalog.storage().io_snapshot();
        let mut refusals = 0;
        let result = self.run_strategy(q, opts, &tracer, &exec_obs, &mut refusals);
        let micros = t0.elapsed().as_micros() as u64;
        let d = self.catalog.storage().io_snapshot().since(&io0);
        let strategy = opts.strategy.resolve().name().to_string();
        let exec_mode =
            if opts.exec_mode.vectorized() { "vector" } else { "row" }.to_string();
        let fingerprint = query_fingerprint(q);
        registry.record_statement(&StatementSample {
            fingerprint: fingerprint.clone(),
            micros,
            reads: d.reads,
            writes: d.writes,
            strategy: strategy.clone(),
            exec_mode,
            error: result.is_err(),
            refusals,
        });
        if let Some(threshold_us) = opts.slow_query_threshold_us() {
            if micros >= threshold_us {
                let explain = match &result {
                    Ok(out) => out.explain.clone(),
                    Err(e) => vec![format!("error: {e}")],
                };
                let seq = registry.record_slow(SlowQuery {
                    seq: 0,
                    sql: nsql_sql::print_query(q),
                    fingerprint,
                    micros,
                    strategy,
                    reads: d.reads,
                    writes: d.writes,
                    explain,
                });
                if let Some(obs) = &exec_obs {
                    obs.registry.event(format!(
                        "slow query #{seq}: {micros} us (threshold {threshold_us} us)"
                    ));
                }
            }
        }
        result
    }

    fn run_strategy(
        &self,
        q: &QueryBlock,
        opts: &QueryOptions,
        tracer: &Tracer,
        exec_obs: &Option<ExecObs>,
        refusals: &mut u64,
    ) -> Result<QueryOutcome> {
        let span = tracer.begin("analyze");
        let analyzed = validate_query(&self.catalog, q);
        tracer.end(span);
        analyzed?;
        let storage = self.catalog.storage();
        if opts.cold_start {
            storage.clear_buffer();
        }
        let before = storage.io_stats();
        let threads = if opts.threads == 0 {
            nsql_exec_par::threads_from_env()
        } else {
            opts.threads
        };
        let vectorized = opts.exec_mode.vectorized();
        let cache_mode = opts.cache.resolve();
        let mut explain = Vec::new();
        let mut temps = Vec::new();
        let relation = match opts.strategy.resolve() {
            Strategy::Auto => unreachable!("Strategy::resolve never returns Auto"),
            Strategy::Batched => {
                explain.push(
                    "strategy: batched correlated evaluation (sort-deduplicated outer bindings)"
                        .to_string(),
                );
                let mut evaluator = NestedIter::new(&self.catalog, storage.clone());
                if cache_mode.enabled() {
                    evaluator = evaluator.with_query_cache(Arc::clone(&self.cache));
                }
                if let Some(budget) = opts.memo_budget {
                    evaluator = evaluator.with_memo_budget(budget);
                }
                let op = match &exec_obs {
                    Some(obs) => {
                        let op = obs.registry.op("batched evaluation");
                        obs.set_current(Some(Arc::clone(&op)));
                        evaluator = evaluator.with_obs(obs.clone());
                        Some(op)
                    }
                    None => None,
                };
                let span = tracer.begin("execute: batched");
                let io0 = storage.io_snapshot();
                let t0 = Instant::now();
                let rel = evaluator.eval_query_batched(q, threads);
                if let Some(op) = &op {
                    op.wall_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let d = storage.io_snapshot().since(&io0);
                    op.reads.fetch_add(d.reads, Ordering::Relaxed);
                    op.writes.fetch_add(d.writes, Ordering::Relaxed);
                    op.hits.fetch_add(d.hits, Ordering::Relaxed);
                    op.misses.fetch_add(d.misses, Ordering::Relaxed);
                    if let Ok(rel) = &rel {
                        op.rows_out.add(0, rel.len() as u64);
                    }
                }
                tracer.end(span);
                if cache_mode.enabled() {
                    let (h, m) = evaluator.cache_counts();
                    explain.push(format!(
                        "cache: mode {}, inner-block {h} hit(s), {m} miss(es)",
                        cache_mode.name()
                    ));
                }
                rel?
            }
            Strategy::NestedIteration => {
                explain.push("strategy: nested iteration (System R)".to_string());
                if vectorized {
                    explain.push(
                        "exec mode: vectorized (batch kernels, per-operator row fallback)"
                            .to_string(),
                    );
                }
                let mut evaluator = NestedIter::new(&self.catalog, storage.clone())
                    .with_vectorized(vectorized);
                if cache_mode.enabled() {
                    evaluator = evaluator.with_query_cache(Arc::clone(&self.cache));
                }
                if let Some(budget) = opts.memo_budget {
                    evaluator = evaluator.with_memo_budget(budget);
                }
                let op = match &exec_obs {
                    Some(obs) => {
                        let op = obs.registry.op("nested iteration");
                        obs.set_current(Some(Arc::clone(&op)));
                        evaluator = evaluator.with_obs(obs.clone());
                        Some(op)
                    }
                    None => None,
                };
                let span = tracer.begin("execute: nested iteration");
                let io0 = storage.io_snapshot();
                let t0 = Instant::now();
                let rel = evaluator.eval_query_threads(q, threads);
                if let Some(op) = &op {
                    op.wall_ns
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let d = storage.io_snapshot().since(&io0);
                    op.reads.fetch_add(d.reads, Ordering::Relaxed);
                    op.writes.fetch_add(d.writes, Ordering::Relaxed);
                    op.hits.fetch_add(d.hits, Ordering::Relaxed);
                    op.misses.fetch_add(d.misses, Ordering::Relaxed);
                    if let Ok(rel) = &rel {
                        op.rows_out.add(0, rel.len() as u64);
                    }
                }
                tracer.end(span);
                if cache_mode.enabled() {
                    let (h, m) = evaluator.cache_counts();
                    explain.push(format!(
                        "cache: mode {}, inner-block {h} hit(s), {m} miss(es)",
                        cache_mode.name()
                    ));
                }
                rel?
            }
            Strategy::Transform => {
                let mut unnest = opts.unnest.clone();
                unnest.preserve_duplicates |=
                    opts.duplicates == crate::options::DuplicateSemantics::ForceDistinct;
                let span = tracer.begin("transform");
                let plan = transform_query_traced(&self.catalog, q, &unnest, tracer);
                tracer.end(span);
                // A transformation error is a *refusal*: the strategy
                // declined the query shape. The fingerprint aggregates
                // count it separately from ordinary errors.
                let plan = plan.map_err(|e| {
                    *refusals += 1;
                    e
                })?;
                explain.push(format!(
                    "strategy: transform ({} temp table{}), join policy: {}",
                    plan.temp_count(),
                    if plan.temp_count() == 1 { "" } else { "s" },
                    opts.join_policy.name()
                ));
                if vectorized {
                    explain.push(
                        "exec mode: vectorized (batch kernels, per-operator row fallback)"
                            .to_string(),
                    );
                }
                explain.extend(plan.trace.iter().cloned());
                explain.push(format!("canonical: {}", nsql_sql::print_query(&plan.canonical)));
                let mut exec =
                    Exec::with_threads(storage.clone(), threads).with_vectorized(vectorized);
                if let Some(obs) = &exec_obs {
                    exec = exec.with_obs(obs.clone());
                }
                let mut pe = PlanExecutor::new(exec, &self.catalog, opts.join_policy);
                pe.set_index_use(opts.index_use);
                if cache_mode.enabled() {
                    explain.push(format!("cache: mode {}", cache_mode.name()));
                    pe.set_cache(crate::result_cache::CacheCtx {
                        cache: Arc::clone(&self.cache),
                        fingerprint: format!(
                            "policy={};index={};page={};buf={}",
                            opts.join_policy.name(),
                            opts.index_use.name(),
                            storage.page_size(),
                            storage.buffer_pages()
                        ),
                        epoch: self.catalog.epoch(),
                        rewrite: cache_mode.rewrite(),
                    });
                }
                let span = tracer.begin("execute plan");
                let rel =
                    pe.execute_transform_plan(&plan, plan.needs_distinct_for_semantics);
                tracer.end(span);
                let rel = rel?;
                explain.extend(pe.log.iter().cloned());
                if let Some(obs) = &exec_obs {
                    // Physical decisions double as diagnostic events — the
                    // stdout-free channel libraries report through.
                    for line in &pe.log {
                        obs.registry.event(line.clone());
                    }
                }
                temps = pe.temp_stats();
                if !opts.keep_temps {
                    pe.drop_temps();
                }
                rel
            }
        };
        let io = storage.io_stats().since(&before);
        if cache_mode.enabled() {
            // One source of truth for the lifetime cache counters: mirror
            // them into the statistics registry (which feeds the
            // `nsql_stat_cache` view), and render the obs event from that
            // same mirrored value.
            let s = self.cache.stats();
            let counters = CacheCounters {
                hits: s.hits,
                misses: s.misses,
                declines: s.declines,
                evictions: s.evictions,
                invalidations: s.invalidations,
                entries: s.entries,
                bytes: s.bytes,
            };
            self.catalog.stats_registry().record_cache(counters);
            if let Some(obs) = &exec_obs {
                obs.registry.event(counters.render());
            }
        }
        let obs = exec_obs.as_ref().map(|o| ObsReport {
            spans: tracer.finish(),
            ops: o.registry.snapshot(),
            events: o.registry.events(),
        });
        Ok(QueryOutcome { relation, io, explain, temps, obs })
    }

    /// Transform a query without executing it (EXPLAIN-only).
    pub fn plan(&self, sql: &str) -> Result<TransformPlan> {
        let q = parse_one_select(sql)?;
        validate_query(&self.catalog, &q)?;
        Ok(transform_query(&self.catalog, &q, &Default::default())?)
    }

    /// The Figure-2 query tree of a SQL query.
    pub fn query_tree(&self, sql: &str) -> Result<QueryTree> {
        let q = parse_one_select(sql)?;
        Ok(query_tree(&self.catalog, &q)?)
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

fn parse_one_select(sql: &str) -> Result<QueryBlock> {
    Ok(nsql_sql::parse_query(sql)?)
}

/// Convenience constructor for building schemas in examples and tests.
pub fn col(name: &str, ty: ColumnType) -> Column {
    Column::new(name, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use crate::options::JoinPolicy;

    fn kiessling_db() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE PARTS (PNUM INT, QOH INT);
             CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
             INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
             INSERT INTO SUPPLY VALUES
               (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
               (10, 2, 8-10-81), (8, 5, 5-7-83);",
        )
        .unwrap();
        db
    }

    const Q2: &str = "SELECT PNUM FROM PARTS WHERE QOH = \
        (SELECT COUNT(SHIPDATE) FROM SUPPLY \
         WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)";

    #[test]
    fn script_roundtrip() {
        let db = kiessling_db();
        let r = db.query("SELECT PNUM FROM PARTS WHERE QOH > 0").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn nested_iteration_matches_paper() {
        let db = kiessling_db();
        let out = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
        let mut vals: Vec<String> =
            out.relation.tuples().iter().map(|t| t.get(0).to_string()).collect();
        vals.sort();
        assert_eq!(vals, vec!["10", "8"]);
        assert!(out.io.total() > 0, "I/O must be accounted");
    }

    #[test]
    fn ja2_transform_matches_nested_iteration_on_q2() {
        let db = kiessling_db();
        let ni = db.query_with(Q2, &QueryOptions::nested_iteration()).unwrap();
        for policy in [
            JoinPolicy::ForceNestedLoop,
            JoinPolicy::ForceMergeJoin,
            JoinPolicy::CostBased,
        ] {
            let opts = QueryOptions {
                strategy: Strategy::Transform,
                join_policy: policy,
                cold_start: true,
                ..Default::default()
            };
            let tr = db.query_with(Q2, &opts).unwrap();
            assert!(
                tr.relation.same_bag(&ni.relation),
                "policy {policy:?}:\nNI:\n{}\nTR:\n{}\nexplain: {:#?}",
                ni.relation,
                tr.relation,
                tr.explain
            );
        }
    }

    #[test]
    fn buggy_kim_variant_loses_part_8_on_q2() {
        // The COUNT bug: COUNT can never be zero in Kim's temporary, so
        // part 8 (QOH = 0, no qualifying shipments) is lost; part 10
        // (QOH = 1 = its count) survives.
        let db = kiessling_db();
        let opts = QueryOptions {
            strategy: Strategy::Transform,
            unnest: nsql_core::UnnestOptions {
                ja_variant: nsql_core::JaVariant::KimOriginal,
                ..Default::default()
            },
            cold_start: true,
            ..Default::default()
        };
        let out = db.query_with(Q2, &opts).unwrap();
        let vals: Vec<String> =
            out.relation.tuples().iter().map(|t| t.get(0).to_string()).collect();
        assert_eq!(vals, vec!["10"], "{}", out.relation);
    }

    #[test]
    fn explain_shows_pipeline() {
        let db = kiessling_db();
        let out = db.query_with(Q2, &QueryOptions::transformed_merge()).unwrap();
        let text = out.explain.join("\n");
        assert!(text.contains("NEST-JA2"), "{text}");
        assert!(text.contains("canonical:"), "{text}");
        assert!(text.contains("merge join"), "{text}");
    }

    #[test]
    fn query_tree_renders() {
        let db = kiessling_db();
        let t = db.query_tree(Q2).unwrap();
        assert_eq!(t.block_count(), 2);
        assert!(t.render().contains("type-JA"));
    }

    #[test]
    fn explain_analyze_q2_shows_decision_costs_and_actuals() {
        let db = kiessling_db();
        let report = db.explain_query(Q2, true, &QueryOptions::default()).unwrap();
        // Transform decision: NEST-JA2 must fire on a type-JA query.
        assert!(report.chosen.contains("NEST-JA2"), "{}", report.chosen);
        // Predicted Section-7 cost for all four join-method variants.
        assert_eq!(report.predicted.len(), 4, "{:#?}", report.predicted);
        for p in &report.predicted {
            assert!(p.total() > 0.0, "{:#?}", p);
        }
        // Measured per-operator actuals from the same run.
        let obs = report.obs.as_ref().expect("ANALYZE collects metrics");
        assert!(obs.ops.iter().any(|o| o.label.contains("join")), "{:#?}", obs.ops);
        assert!(obs.ops.iter().any(|o| o.rows_out > 0), "{:#?}", obs.ops);
        assert!(
            obs.ops.iter().any(|o| o.reads + o.hits + o.misses > 0),
            "{:#?}",
            obs.ops
        );
        assert!(!obs.spans.is_empty(), "lifecycle spans missing");
        let text = report.render_lines().join("\n");
        assert!(text.contains("transform decision:"), "{text}");
        assert!(text.contains("predicted cost"), "{text}");
        assert!(text.contains("measured:"), "{text}");
        assert_eq!(report.rows, Some(2));
    }

    #[test]
    fn explain_json_roundtrips_through_parser() {
        let db = kiessling_db();
        let report = db.explain_query(Q2, true, &QueryOptions::default()).unwrap();
        let text = report.to_json().to_string();
        let parsed = nsql_obs::Json::parse(&text).unwrap();
        let sql = parsed.get("sql").and_then(|j| j.as_str()).unwrap();
        assert!(sql.starts_with("SELECT PNUM FROM PARTS"), "{sql}");
        assert_eq!(
            parsed.get("predicted").and_then(|j| j.as_arr()).map(|a| a.len()),
            Some(4)
        );
        let ops = parsed
            .get("obs")
            .and_then(|o| o.get("operators"))
            .and_then(|j| j.as_arr())
            .expect("obs.operators present");
        assert!(!ops.is_empty());
        for op in ops {
            for key in ["label", "rows_in", "rows_out", "reads", "writes", "wall_ns"] {
                assert!(op.get(key).is_some(), "missing {key} in {op}");
            }
        }
    }

    #[test]
    fn explain_statement_runs_through_script_path() {
        let mut db = kiessling_db();
        let rel = db
            .execute_script(&format!("EXPLAIN ANALYZE {Q2}"))
            .unwrap()
            .expect("EXPLAIN yields a relation");
        let text: Vec<String> =
            rel.tuples().iter().map(|t| t.get(0).to_string()).collect();
        let text = text.join("\n");
        assert!(text.contains("NEST-JA2"), "{text}");
        assert!(text.contains("measured:"), "{text}");
    }

    #[test]
    fn observe_does_not_change_io_or_results() {
        let db = kiessling_db();
        let base = QueryOptions { cold_start: true, ..Default::default() };
        let s0 = db.catalog.storage().io_snapshot();
        let plain = db.query_with(Q2, &base).unwrap();
        let s1 = db.catalog.storage().io_snapshot();
        let observed = db
            .query_with(Q2, &QueryOptions { observe: true, ..base.clone() })
            .unwrap();
        let s2 = db.catalog.storage().io_snapshot();
        assert!(plain.relation.same_bag(&observed.relation));
        assert_eq!(plain.io.reads, observed.io.reads);
        assert_eq!(plain.io.writes, observed.io.writes);
        // Full four-counter trace must be byte-identical between the runs.
        assert_eq!(s1.since(&s0), s2.since(&s1));
        assert!(plain.obs.is_none());
        assert!(observed.obs.is_some());
    }

    #[test]
    fn exec_mode_vector_is_invisible_except_in_explain() {
        use crate::options::ExecMode;
        let db = kiessling_db();
        for base in [QueryOptions::nested_iteration(), QueryOptions::transformed()] {
            let row = db
                .query_with(Q2, &QueryOptions { exec_mode: ExecMode::Row, ..base.clone() })
                .unwrap();
            let vec = db
                .query_with(Q2, &QueryOptions { exec_mode: ExecMode::Vector, ..base.clone() })
                .unwrap();
            assert_eq!(row.relation, vec.relation, "{base:?}");
            assert_eq!(row.io, vec.io, "{base:?}");
            let row_text = row.explain.join("\n");
            let vec_text = vec.explain.join("\n");
            assert!(!row_text.contains("vectorized"), "{row_text}");
            assert!(vec_text.contains("exec mode: vectorized"), "{vec_text}");
        }
    }

    #[test]
    fn explain_analyze_marks_vectorized_operators() {
        use crate::options::ExecMode;
        let db = kiessling_db();
        let opts = QueryOptions {
            observe: true,
            exec_mode: ExecMode::Vector,
            ..QueryOptions::transformed()
        };
        let out = db.query_with(Q2, &opts).unwrap();
        let obs = out.obs.expect("observe collects metrics");
        assert!(
            obs.ops.iter().any(|o| o.vectorized && o.batches > 0),
            "{:#?}",
            obs.ops
        );
    }

    #[test]
    fn unknown_table_is_caught_before_execution() {
        let db = Database::new();
        assert!(matches!(
            db.query("SELECT X FROM NOPE"),
            Err(DbError::Analyze(_))
        ));
    }
}
