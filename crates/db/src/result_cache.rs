//! Transform-path glue for the cross-query result cache (`nsql-cache`).
//!
//! The cacheable unit on the transform path is one materialized temporary
//! (NEST-JA2's `TEMP1..TEMP3`, Kim's aggregate temp, NEST-N-J's projected
//! lists). Three concerns live here:
//!
//! * **Keys** — a temp is identified by its *deep* plan text (its
//!   [`LogicalPlan::explain`] rendering with every referenced temp's
//!   definition appended), the options fingerprint, the sorted
//!   `(base table, generation)` pairs it transitively reads, and the
//!   catalog epoch. Two queries that produce structurally identical temps
//!   over unchanged bases share entries, whatever their SQL spelling.
//! * **Aggregate-view descriptors** — an `Aggregate`-rooted temp also
//!   carries a shape summary ([`AggViewDescriptor`]) that deliberately
//!   omits the plan text, so a structurally *different* query can be
//!   judged for sound reuse (and, critically, *declined* when the cached
//!   view dropped the empty groups the request must preserve — the
//!   COUNT-bug guard).
//! * **Replay** — an exact hit does not skip I/O, it *recharges* it: the
//!   recorded page-event sequence is re-issued against the live buffer
//!   pool with fresh page ids, so reads, writes, the hit/miss split, and
//!   the final buffer state are identical to re-running the
//!   materialization (see DESIGN.md "Result caching").

use nsql_cache::{AggViewDescriptor, QueryCache, TempEntry};
use nsql_core::LogicalPlan;
use nsql_sql::{AggArg, ColumnRef};
use nsql_storage::{HeapFile, PageId, Storage, TraceEvent};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Per-query cache context threaded into the plan executor.
#[derive(Clone)]
pub struct CacheCtx {
    /// The shared cache.
    pub cache: Arc<QueryCache>,
    /// Options fingerprint: every knob that changes the recorded I/O
    /// sequence of a materialization (join policy, index use, page and
    /// buffer geometry). Threads and exec mode are deliberately absent —
    /// both are sequence-invariant by the workspace's standing gates.
    pub fingerprint: String,
    /// Catalog incarnation stamp (see `Catalog::epoch`).
    pub epoch: u64,
    /// Whether sound aggregate-view rewrites may answer
    /// (`CacheMode::Rewrite`).
    pub rewrite: bool,
}

/// Everything needed to probe, publish, and explain one temp's cache
/// interaction, derived before any materialization happens.
pub struct TempKey {
    /// The temp's name as the plan spells it (`TEMP1`, …).
    pub name: String,
    /// Deep plan text (referenced temp definitions inlined).
    pub text: String,
    /// Sorted `(base table, generation)` pairs transitively read.
    pub bases: Vec<(String, u64)>,
    /// Earlier temps this plan scans (uppercased), for the entry-identity
    /// dependency check.
    pub dep_names: Vec<String>,
    /// Aggregate-view shape, when the temp is `Aggregate`-rooted.
    pub view: Option<AggViewDescriptor>,
}

/// Tables scanned directly by `plan`, uppercased.
fn scanned_tables(plan: &LogicalPlan, out: &mut BTreeSet<String>) {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            out.insert(table.to_ascii_uppercase());
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. } => scanned_tables(input, out),
        LogicalPlan::Join { left, right, .. } => {
            scanned_tables(left, out);
            scanned_tables(right, out);
        }
    }
}

/// Build the [`TempKey`]s for a plan's temps in creation order. Returns
/// `None` — caching must be skipped wholesale — when any transitively
/// scanned base table has no generation stamp (a provider that doesn't
/// track DML can't be invalidated soundly).
pub fn temp_keys(
    temps: &[nsql_core::TempTable],
    generation_of: impl Fn(&str) -> Option<u64>,
) -> Option<Vec<TempKey>> {
    let mut deep_texts: BTreeMap<String, String> = BTreeMap::new();
    let mut deep_bases: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut defs: BTreeMap<String, LogicalPlan> = BTreeMap::new();
    let mut keys = Vec::with_capacity(temps.len());
    for temp in temps {
        let upper = temp.name.to_ascii_uppercase();
        let mut scans = BTreeSet::new();
        scanned_tables(&temp.plan, &mut scans);
        let mut text = temp.plan.explain();
        let mut bases_set: BTreeSet<String> = BTreeSet::new();
        let mut dep_names = Vec::new();
        for t in &scans {
            if let Some(def) = deep_texts.get(t) {
                // Inline the referenced temp so the text pins the whole
                // computation, not a name that means something else in
                // another query.
                text.push_str(&format!("WITH {t} :=\n{def}"));
                dep_names.push(t.clone());
                bases_set.extend(deep_bases[t].iter().cloned());
            } else {
                bases_set.insert(t.clone());
            }
        }
        let mut bases = Vec::with_capacity(bases_set.len());
        for b in &bases_set {
            bases.push((b.clone(), generation_of(b)?));
        }
        let view = agg_view_descriptor(&temp.plan, &defs);
        deep_texts.insert(upper.clone(), text.clone());
        deep_bases.insert(upper.clone(), bases_set);
        defs.insert(upper, temp.plan.clone());
        keys.push(TempKey { name: temp.name.clone(), text, bases, dep_names, view });
    }
    Some(keys)
}

/// Shape summary of an `Aggregate`-rooted temp, with referenced temp
/// definitions traversed so NEST-JA2's `TEMP3` (aggregate over
/// `TEMP1 ⋈ TEMP2`) and Kim's single aggregate temp describe themselves in
/// comparable terms: unqualified group columns, the one aggregate, the
/// restriction predicates applied anywhere below, and whether an outer
/// join preserved empty groups.
pub fn agg_view_descriptor(
    plan: &LogicalPlan,
    defs: &BTreeMap<String, LogicalPlan>,
) -> Option<AggViewDescriptor> {
    let LogicalPlan::Aggregate { input, group_by, aggs } = plan else {
        return None;
    };
    if aggs.len() != 1 {
        return None;
    }
    let mut filters = Vec::new();
    let mut outer = false;
    collect_shape(input, defs, &mut filters, &mut outer);
    filters.sort();
    filters.dedup();
    let unq = |c: &ColumnRef| c.column.to_ascii_uppercase();
    let mut group_cols: Vec<String> = group_by.iter().map(unq).collect();
    group_cols.sort();
    let a = &aggs[0];
    Some(AggViewDescriptor {
        group_cols,
        agg_func: a.func.name().to_string(),
        agg_arg: match &a.arg {
            AggArg::Star => "*".to_string(),
            AggArg::Column(c) => c.column.to_ascii_uppercase(),
        },
        filters,
        preserves_empty_groups: outer,
    })
}

fn collect_shape(
    plan: &LogicalPlan,
    defs: &BTreeMap<String, LogicalPlan>,
    filters: &mut Vec<String>,
    outer: &mut bool,
) {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            if let Some(def) = defs.get(&table.to_ascii_uppercase()) {
                collect_shape(def, defs, filters, outer);
            }
        }
        LogicalPlan::Filter { input, pred } => {
            filters.push(nsql_sql::print_predicate(pred));
            collect_shape(input, defs, filters, outer);
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Aggregate { input, .. } => {
            collect_shape(input, defs, filters, outer)
        }
        LogicalPlan::Join { left, right, kind, .. } => {
            if *kind == nsql_core::LogicalJoinKind::LeftOuter {
                *outer = true;
            }
            collect_shape(left, defs, filters, outer);
            collect_shape(right, defs, filters, outer);
        }
    }
}

/// Re-issue a cached temp's recorded page-event sequence against live
/// storage and rebuild its heap file on the fresh pages.
///
/// `pid_map` carries recorded→live page-id translations *across* the
/// temps of one query: a later temp's recorded reads of an earlier temp's
/// pages must land on that temp's replayed pages. Events over unmapped
/// ids are base-table accesses — live under the very generation match
/// that produced the hit — and pass through untranslated. Every recorded
/// `Write` allocates a live page (scratch writes get an empty one) so the
/// write count, and the global page-id sequence after the replay, match
/// the recorded run exactly.
pub fn replay_temp(
    storage: &Storage,
    entry: &TempEntry,
    pid_map: &mut HashMap<PageId, PageId>,
) -> HeapFile {
    let mapped = |m: &HashMap<PageId, PageId>, pid: PageId| m.get(&pid).copied().unwrap_or(pid);
    for ev in &entry.trace {
        match *ev {
            TraceEvent::Read(pid) => {
                let _ = storage.read_page(mapped(pid_map, pid));
            }
            TraceEvent::ReadDirect(pid) => {
                let _ = storage.read_page_direct(mapped(pid_map, pid));
            }
            TraceEvent::Write(pid) => {
                let live = match entry.output_index(pid) {
                    Some(i) => storage.write_new_page(entry.output_pages[i].1.clone()),
                    None => storage.write_new_page(Vec::new()),
                };
                pid_map.insert(pid, live);
            }
            TraceEvent::Free(pid) => {
                // Only replayed pages are ours to free; the recorded run
                // never frees base pages inside a materialization.
                if let Some(live) = pid_map.get(&pid) {
                    storage.free_page(*live);
                }
            }
            TraceEvent::Marker(_) => {}
        }
    }
    let pages: Vec<PageId> =
        entry.output_pages.iter().map(|(pid, _)| mapped(pid_map, *pid)).collect();
    HeapFile::from_parts(entry.schema.clone(), pages, entry.tuple_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_core::{AggItem, LogicalJoinKind, LogicalPlan, TempTable};
    use nsql_sql::{parse_query, AggFunc, Predicate};

    fn scan(t: &str) -> LogicalPlan {
        LogicalPlan::Scan { table: t.to_string(), alias: None }
    }

    fn pred(sql: &str) -> Predicate {
        parse_query(&format!("SELECT X FROM T WHERE {sql}"))
            .unwrap()
            .where_clause
            .unwrap()
    }

    fn agg_over(input: LogicalPlan, outer_join: bool) -> LogicalPlan {
        let input = if outer_join {
            LogicalPlan::Join {
                left: Box::new(input),
                right: Box::new(scan("U")),
                kind: LogicalJoinKind::LeftOuter,
                on: vec![],
            }
        } else {
            input
        };
        LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: vec![ColumnRef { table: Some("T".into()), column: "K".into() }],
            aggs: vec![AggItem {
                func: AggFunc::Count,
                arg: AggArg::Star,
                alias: "CNT".into(),
            }],
        }
    }

    #[test]
    fn deep_text_pins_referenced_temp_definitions() {
        let temps = vec![
            TempTable { name: "TEMP1".into(), plan: scan("BASE") },
            TempTable {
                name: "TEMP2".into(),
                plan: LogicalPlan::Filter {
                    input: Box::new(scan("TEMP1")),
                    pred: pred("A = 1"),
                },
            },
        ];
        let keys = temp_keys(&temps, |_| Some(7)).unwrap();
        assert!(keys[1].text.contains("WITH TEMP1 :="), "{}", keys[1].text);
        assert_eq!(keys[1].dep_names, vec!["TEMP1".to_string()]);
        // TEMP2's bases resolve through TEMP1 to the base table.
        assert_eq!(keys[1].bases, vec![("BASE".to_string(), 7)]);
    }

    #[test]
    fn missing_generation_disables_caching() {
        let temps = vec![TempTable { name: "TEMP1".into(), plan: scan("BASE") }];
        assert!(temp_keys(&temps, |_| None).is_none());
    }

    #[test]
    fn outer_join_shape_reports_preserved_groups() {
        let defs = BTreeMap::new();
        let plain = agg_view_descriptor(&agg_over(scan("T"), false), &defs).unwrap();
        let padded = agg_view_descriptor(&agg_over(scan("T"), true), &defs).unwrap();
        assert!(!plain.preserves_empty_groups);
        assert!(padded.preserves_empty_groups);
        assert_eq!(plain.agg_func, "COUNT");
        assert_eq!(plain.group_cols, vec!["K".to_string()]);
    }
}
