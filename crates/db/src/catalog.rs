//! The table catalog: names → stored heap files.

use crate::error::DbError;
use crate::Result;
use nsql_analyzer::resolve::SchemaSource;
use nsql_engine::TableProvider;
use nsql_storage::{HeapFile, Storage};
use nsql_types::{Relation, Schema};
use std::collections::BTreeMap;

/// Catalog of base tables bound to one [`Storage`].
pub struct Catalog {
    storage: Storage,
    tables: BTreeMap<String, HeapFile>,
}

impl Catalog {
    /// Empty catalog over `storage`.
    pub fn new(storage: Storage) -> Catalog {
        Catalog { storage, tables: BTreeMap::new() }
    }

    /// The storage handle.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Create a table with `schema` (columns are requalified by the table
    /// name) and no rows.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_uppercase();
        if self.tables.contains_key(&key) {
            return Err(DbError::Catalog(format!("table {key} already exists")));
        }
        let schema = schema.requalify(&key);
        let file = HeapFile::from_tuples(&self.storage, schema, Vec::new());
        self.tables.insert(key, file);
        Ok(())
    }

    /// Register a relation as a table (stores it; one write per page).
    pub fn load_table(&mut self, name: &str, rel: &Relation) -> Result<()> {
        let key = name.to_ascii_uppercase();
        let requalified =
            Relation::new(rel.schema().requalify(&key), rel.tuples().to_vec())?;
        let file = self.storage.store_relation(&requalified);
        self.tables.insert(key, file);
        Ok(())
    }

    /// Append rows to a table (rewrites the heap file — the engine is
    /// read-mostly and INSERT exists for building test databases).
    pub fn insert(&mut self, name: &str, rows: Vec<nsql_types::Tuple>) -> Result<usize> {
        let key = name.to_ascii_uppercase();
        let file = self
            .tables
            .get(&key)
            .ok_or_else(|| DbError::Catalog(format!("unknown table {key}")))?
            .clone();
        let schema = file.schema().clone();
        for r in &rows {
            if r.arity() != schema.arity() {
                return Err(DbError::Type(nsql_types::TypeError::ArityMismatch {
                    schema: schema.arity(),
                    tuple: r.arity(),
                }));
            }
        }
        let n = rows.len();
        let all: Vec<nsql_types::Tuple> =
            file.scan(&self.storage).chain(rows).collect();
        let new_file = HeapFile::from_tuples(&self.storage, schema, all);
        file.drop_pages(&self.storage);
        self.tables.insert(key, new_file);
        Ok(n)
    }

    /// Drop a table, freeing its pages.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_uppercase();
        match self.tables.remove(&key) {
            Some(f) => {
                f.drop_pages(&self.storage);
                Ok(())
            }
            None => Err(DbError::Catalog(format!("unknown table {key}"))),
        }
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// The heap file of a table.
    pub fn table(&self, name: &str) -> Option<&HeapFile> {
        self.tables.get(&name.to_ascii_uppercase())
    }
}

impl SchemaSource for Catalog {
    fn table_schema(&self, table: &str) -> Option<Schema> {
        self.tables.get(&table.to_ascii_uppercase()).map(|f| f.schema().clone())
    }
}

impl TableProvider for Catalog {
    fn get_table(&self, table: &str) -> Option<HeapFile> {
        self.tables.get(&table.to_ascii_uppercase()).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("A", ColumnType::Int),
            Column::new("B", ColumnType::Int),
        ])
    }

    #[test]
    fn create_insert_and_read_back() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        let n = cat
            .insert(
                "t",
                vec![
                    Tuple::new(vec![Value::Int(1), Value::Int(2)]),
                    Tuple::new(vec![Value::Int(3), Value::Int(4)]),
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
        let file = cat.get_table("T").unwrap();
        assert_eq!(file.tuple_count(), 2);
        // Columns got requalified by the table name.
        assert!(file.schema().resolve(Some("T"), "A").is_ok());
    }

    #[test]
    fn duplicate_create_fails() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        assert!(cat.create_table("t", schema()).is_err());
    }

    #[test]
    fn insert_checks_arity() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        assert!(cat.insert("T", vec![Tuple::new(vec![Value::Int(1)])]).is_err());
    }

    #[test]
    fn drop_table_removes() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        cat.drop_table("T").unwrap();
        assert!(cat.get_table("T").is_none());
        assert!(cat.drop_table("T").is_err());
    }
}
