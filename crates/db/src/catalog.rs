//! The table catalog: names → stored heap files (+ their B+tree indexes).
//!
//! On a file-backed [`Storage`] the catalog is also the unit of durability:
//! every DDL/DML statement ends by committing the open page batch together
//! with a self-describing snapshot of the whole catalog (table schemas, page
//! ids, tuple counts, encoded indexes). Recovery hands that snapshot back and
//! [`Catalog::restore`] rebuilds the in-memory maps without any page I/O.

use crate::error::DbError;
use crate::stat_views;
use crate::Result;
use nsql_analyzer::resolve::SchemaSource;
use nsql_engine::TableProvider;
use nsql_index::BTreeIndex;
use nsql_obs::stats::{thread_shard, StatsRegistry, TableCounters};
use nsql_storage::durable::codec::{self, ByteReader, ByteWriter};
use nsql_storage::{HeapFile, PageId, Storage, StorageError};
use nsql_types::{Relation, Schema};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Version tag leading every catalog snapshot (room to evolve the layout).
/// v1: tables + indexes. v2: adds per-table per-column distinct counts, so
/// the three-way cost comparison keeps its statistics across restarts;
/// v1 snapshots still restore (without stats).
const SNAPSHOT_VERSION: u32 = 2;

fn store_err(e: StorageError) -> DbError {
    DbError::Engine(nsql_engine::EngineError::Storage(e))
}

/// Source of process-unique cache epochs: every catalog incarnation gets
/// its own, so cross-query cache entries published against one catalog can
/// never match another (in particular a database reopened after a crash).
static NEXT_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Catalog of base tables bound to one [`Storage`].
pub struct Catalog {
    storage: Storage,
    tables: BTreeMap<String, HeapFile>,
    indexes: BTreeMap<String, Vec<Arc<BTreeIndex>>>,
    /// Per-table DML generation stamps: bumped on every mutation of the
    /// table (create/load/insert/drop/index change). Cache keys embed the
    /// stamp, so stale entries silently stop matching even without the
    /// proactive invalidation below.
    generations: BTreeMap<String, u64>,
    /// This incarnation's cache epoch (see [`NEXT_EPOCH`]).
    epoch: u64,
    /// Cross-query result cache to invalidate proactively on DML, so a
    /// mutated table's entries free their bytes immediately instead of
    /// lingering until eviction.
    result_cache: Option<Arc<nsql_cache::QueryCache>>,
    /// Per-table, per-column distinct-value counts, gathered while the
    /// rows pass through memory (load/insert) — the statistic the batched
    /// strategy's cost formula needs for `d`. Persisted in the v2 catalog
    /// snapshot, so the three-way cost comparison keeps its statistics
    /// across restarts; a v1 snapshot (or a table never loaded through
    /// memory) has no entry and cost estimation falls back to the tuple
    /// count as a conservative upper bound.
    stats: BTreeMap<String, Vec<usize>>,
    /// The cumulative statistics registry shared with the owning
    /// `Database`. Per-table access counters are bumped here at the
    /// table-fetch and DML seams; the `nsql_stat_*` views render it.
    stats_registry: Arc<StatsRegistry>,
    /// Cached handles into the registry's per-table counters, maintained
    /// alongside `tables`. The table-fetch seam sits on nested iteration's
    /// per-binding loop, so it must not take the registry's map lock (or
    /// allocate a key) per call — it bumps these pre-resolved relaxed
    /// atomics instead, gated on one `enabled()` load.
    counters: BTreeMap<String, Arc<TableCounters>>,
    /// Materialized `nsql_stat_*` views, keyed by uppercase view name.
    /// Heap files on uncounted system pages; refreshed once per statement
    /// for the views that statement references (interior mutability:
    /// refresh and lazy materialization happen behind `&self` during
    /// planning and execution).
    system_views: Mutex<BTreeMap<String, HeapFile>>,
}

/// Distinct values per column of an in-memory tuple set.
fn column_distincts(tuples: &[nsql_types::Tuple], arity: usize) -> Vec<usize> {
    (0..arity)
        .map(|i| {
            tuples
                .iter()
                .map(|t| t.get(i))
                .collect::<std::collections::HashSet<_>>()
                .len()
        })
        .collect()
}

impl Catalog {
    /// Empty catalog over `storage`. The statistics registry is created
    /// here (honouring `NSQL_STATS`) and shared outward via
    /// [`Catalog::stats_registry`].
    pub fn new(storage: Storage) -> Catalog {
        Catalog {
            storage,
            tables: BTreeMap::new(),
            indexes: BTreeMap::new(),
            generations: BTreeMap::new(),
            epoch: NEXT_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            result_cache: None,
            stats: BTreeMap::new(),
            stats_registry: Arc::new(StatsRegistry::from_env()),
            counters: BTreeMap::new(),
            system_views: Mutex::new(BTreeMap::new()),
        }
    }

    /// The cumulative statistics registry this catalog reports into.
    pub fn stats_registry(&self) -> Arc<StatsRegistry> {
        Arc::clone(&self.stats_registry)
    }

    /// Re-materialize the `nsql_stat_*` views named in `referenced`
    /// (non-view names are ignored). Called once per statement with the
    /// statement's full recursive table list, so every scan inside the
    /// statement — nested blocks included — sees one consistent snapshot.
    /// Views land on uncounted system pages: refreshing moves no counter.
    pub fn refresh_stat_views<'a>(&self, referenced: impl IntoIterator<Item = &'a str>) {
        for name in referenced {
            if stat_views::is_stat_view(name) {
                self.materialize_stat_view(&name.to_ascii_uppercase());
            }
        }
    }

    fn materialize_stat_view(&self, key: &str) -> Option<HeapFile> {
        let base: Vec<String> = self.tables.keys().cloned().collect();
        let rel =
            stat_views::stat_view_relation(key, &self.stats_registry, &base, &self.storage)?;
        let file = self.storage.store_relation_system(&rel);
        let mut views = self.system_views.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(old) = views.insert(key.to_string(), file.clone()) {
            old.drop_pages(&self.storage);
        }
        Some(file)
    }

    /// The current materialization of a stat view, building it on first
    /// touch (a statement-start refresh normally got there first).
    fn stat_view_file(&self, key: &str) -> Option<HeapFile> {
        if let Some(f) = self
            .system_views
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            return Some(f.clone());
        }
        self.materialize_stat_view(key)
    }

    /// Distinct values in `table`'s `col`-th column, when statistics were
    /// gathered this incarnation. `None` after [`Catalog::restore`] —
    /// callers fall back to the tuple count as an upper bound.
    pub fn distinct_count(&self, table: &str, col: usize) -> Option<usize> {
        self.stats.get(&table.to_ascii_uppercase())?.get(col).copied()
    }

    /// Attach the cross-query result cache to invalidate on DML.
    pub fn set_result_cache(&mut self, cache: Arc<nsql_cache::QueryCache>) {
        self.result_cache = Some(cache);
    }

    /// The DML generation stamp of `table` (0 before any tracked change).
    pub fn generation(&self, table: &str) -> u64 {
        self.generations.get(&table.to_ascii_uppercase()).copied().unwrap_or(0)
    }

    /// This catalog incarnation's cache epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record a mutation of `key` (already uppercased): bump its
    /// generation and drop any cache entries built over it.
    fn touch(&mut self, key: &str) {
        *self.generations.entry(key.to_string()).or_insert(0) += 1;
        if let Some(cache) = &self.result_cache {
            cache.invalidate_table(key);
        }
    }

    /// The storage handle.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Create a table with `schema` (columns are requalified by the table
    /// name) and no rows.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_uppercase();
        if stat_views::is_stat_view(&key) {
            return Err(DbError::Catalog(format!("{key} is a reserved system view name")));
        }
        if self.tables.contains_key(&key) {
            return Err(DbError::Catalog(format!("table {key} already exists")));
        }
        let schema = schema.requalify(&key);
        self.stats.insert(key.clone(), vec![0; schema.arity()]);
        self.counters.insert(key.clone(), self.stats_registry.table_entry(&key));
        let file = HeapFile::from_tuples(&self.storage, schema, Vec::new());
        self.tables.insert(key.clone(), file);
        self.touch(&key);
        self.persist()
    }

    /// Register a relation as a table (stores it; one write per page).
    /// Replaces any previous table of the same name, including its indexes.
    pub fn load_table(&mut self, name: &str, rel: &Relation) -> Result<()> {
        let key = name.to_ascii_uppercase();
        if stat_views::is_stat_view(&key) {
            return Err(DbError::Catalog(format!("{key} is a reserved system view name")));
        }
        let counters = self
            .counters
            .entry(key.clone())
            .or_insert_with(|| self.stats_registry.table_entry(&key));
        if self.stats_registry.enabled() {
            counters.tuples_written.add(thread_shard(), rel.tuples().len() as u64);
        }
        let requalified =
            Relation::new(rel.schema().requalify(&key), rel.tuples().to_vec())?;
        self.stats.insert(
            key.clone(),
            column_distincts(requalified.tuples(), requalified.schema().arity()),
        );
        let file = self.storage.store_relation(&requalified);
        if let Some(old) = self.tables.insert(key.clone(), file) {
            old.drop_pages(&self.storage);
        }
        for ix in self.indexes.remove(&key).unwrap_or_default() {
            ix.drop_pages(&self.storage);
        }
        self.touch(&key);
        self.persist()
    }

    /// Append rows to a table (rewrites the heap file — the engine is
    /// read-mostly and INSERT exists for building test databases).
    pub fn insert(&mut self, name: &str, rows: Vec<nsql_types::Tuple>) -> Result<usize> {
        let key = name.to_ascii_uppercase();
        let file = self
            .tables
            .get(&key)
            .ok_or_else(|| DbError::Catalog(format!("unknown table {key}")))?
            .clone();
        let schema = file.schema().clone();
        for r in &rows {
            if r.arity() != schema.arity() {
                return Err(DbError::Type(nsql_types::TypeError::ArityMismatch {
                    schema: schema.arity(),
                    tuple: r.arity(),
                }));
            }
        }
        let n = rows.len();
        if self.stats_registry.enabled() {
            if let Some(t) = self.counters.get(&key) {
                t.tuples_written.add(thread_shard(), n as u64);
            }
        }
        let all: Vec<nsql_types::Tuple> =
            file.scan(&self.storage).chain(rows).collect();
        self.stats.insert(key.clone(), column_distincts(&all, schema.arity()));
        let new_file = HeapFile::from_tuples(&self.storage, schema, all);
        file.drop_pages(&self.storage);
        self.tables.insert(key.clone(), new_file);
        self.rebuild_indexes(&key);
        self.touch(&key);
        self.persist()?;
        Ok(n)
    }

    /// Drop a table, freeing its pages and any indexes on it.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_uppercase();
        match self.tables.remove(&key) {
            Some(f) => {
                f.drop_pages(&self.storage);
                for ix in self.indexes.remove(&key).unwrap_or_default() {
                    ix.drop_pages(&self.storage);
                }
                self.stats.remove(&key);
                // Keep the registry's entry (dropped tables stay in the
                // history the views render); only the hot-path cache goes.
                self.counters.remove(&key);
                self.touch(&key);
                self.persist()
            }
            None => Err(DbError::Catalog(format!("unknown table {key}"))),
        }
    }

    /// Build a B+tree index on one column of `table` (resolved by
    /// unqualified column name, case-insensitively). Returns the generated
    /// index name. The index is a clustered copy of the table sorted by the
    /// key; DML on the table rebuilds it.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<String> {
        let key = table.to_ascii_uppercase();
        let file = self
            .tables
            .get(&key)
            .ok_or_else(|| DbError::Catalog(format!("unknown table {key}")))?
            .clone();
        let col = file
            .schema()
            .columns()
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(column))
            .ok_or_else(|| {
                DbError::Catalog(format!("no column {column} in table {key}"))
            })?;
        let existing = self.indexes.entry(key.clone()).or_default();
        if existing.iter().any(|ix| ix.key_col() == col) {
            return Err(DbError::Catalog(format!(
                "index on {key}.{} already exists",
                column.to_ascii_uppercase()
            )));
        }
        let ix_name = format!("IX_{key}_{}", column.to_ascii_uppercase());
        let ix = BTreeIndex::build(&self.storage, &ix_name, col, &file);
        existing.push(Arc::new(ix));
        self.touch(&key);
        self.persist()?;
        Ok(ix_name)
    }

    /// The indexes on `table` (empty slice when none).
    pub fn indexes(&self, table: &str) -> &[Arc<BTreeIndex>] {
        self.indexes
            .get(&table.to_ascii_uppercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of indexes across all tables.
    pub fn index_count(&self) -> usize {
        self.indexes.values().map(Vec::len).sum()
    }

    /// Re-derive every index on `key` from the table's current heap file
    /// (DML rewrites the file, so indexes are rebuilt wholesale).
    fn rebuild_indexes(&mut self, key: &str) {
        let Some(file) = self.tables.get(key).cloned() else { return };
        let Some(list) = self.indexes.get_mut(key) else { return };
        for slot in list.iter_mut() {
            let rebuilt =
                BTreeIndex::build(&self.storage, slot.name(), slot.key_col(), &file);
            let old = std::mem::replace(slot, Arc::new(rebuilt));
            old.drop_pages(&self.storage);
        }
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// The heap file of a table.
    pub fn table(&self, name: &str) -> Option<&HeapFile> {
        self.tables.get(&name.to_ascii_uppercase())
    }

    /// Commit the open durable batch with a full catalog snapshot as the
    /// commit metadata. No-op on memory storage — every DDL/DML path calls
    /// this unconditionally.
    pub fn persist(&self) -> Result<()> {
        if !self.storage.is_durable() {
            return Ok(());
        }
        let snapshot = self.snapshot();
        self.storage.commit_durable(&snapshot).map_err(store_err)
    }

    /// Serialize the catalog: every table's schema, page ids, and tuple
    /// count, plus every index, plus (v2) the per-column distinct counts.
    /// The snapshot is self-describing — restoring needs no page reads.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u32(self.tables.len() as u32);
        for (key, file) in &self.tables {
            w.put_str(key);
            codec::put_schema(&mut w, file.schema());
            w.put_u64(file.tuple_count() as u64);
            w.put_u32(file.page_count() as u32);
            for pid in file.page_ids() {
                w.put_u64(pid.0);
            }
            let ixs = self.indexes.get(key).map(Vec::as_slice).unwrap_or(&[]);
            w.put_u32(ixs.len() as u32);
            for ix in ixs {
                ix.encode(&mut w);
            }
        }
        // v2 trailer: per-table per-column distinct counts, so the
        // three-way cost comparison reopens with its statistics intact.
        w.put_u32(self.stats.len() as u32);
        for (key, counts) in &self.stats {
            w.put_str(key);
            w.put_u32(counts.len() as u32);
            for &d in counts {
                w.put_u64(d as u64);
            }
        }
        w.into_bytes()
    }

    /// Rebuild a catalog from the snapshot handed back by crash recovery
    /// (`None`/empty → a fresh, empty catalog). Pure metadata work: no page
    /// I/O happens until the first query touches a table.
    pub fn restore(storage: Storage, snapshot: Option<&[u8]>) -> Result<Catalog> {
        let mut cat = Catalog::new(storage);
        let Some(bytes) = snapshot.filter(|b| !b.is_empty()) else {
            return Ok(cat);
        };
        let mut r = ByteReader::new(bytes);
        let version = r.get_u32().map_err(store_err)?;
        if !(1..=SNAPSHOT_VERSION).contains(&version) {
            return Err(store_err(StorageError::Corrupt(format!(
                "unsupported catalog snapshot version {version}"
            ))));
        }
        let n_tables = r.get_u32().map_err(store_err)?;
        for _ in 0..n_tables {
            let key = r.get_str().map_err(store_err)?;
            let schema = codec::get_schema(&mut r).map_err(store_err)?;
            let tuple_count = r.get_u64().map_err(store_err)? as usize;
            let n_pages = r.get_u32().map_err(store_err)? as usize;
            let mut pages = Vec::with_capacity(n_pages);
            for _ in 0..n_pages {
                pages.push(PageId(r.get_u64().map_err(store_err)?));
            }
            let n_ixs = r.get_u32().map_err(store_err)? as usize;
            let mut ixs = Vec::with_capacity(n_ixs);
            for _ in 0..n_ixs {
                ixs.push(Arc::new(BTreeIndex::decode(&mut r).map_err(store_err)?));
            }
            cat.counters.insert(key.clone(), cat.stats_registry.table_entry(&key));
            cat.tables.insert(key.clone(), HeapFile::from_parts(schema, pages, tuple_count));
            if !ixs.is_empty() {
                cat.indexes.insert(key, ixs);
            }
        }
        // v2 trailer: distinct-count statistics. A v1 snapshot ends here
        // and restores without stats (cost estimation falls back to tuple
        // counts, as before).
        if version >= 2 {
            let n_stats = r.get_u32().map_err(store_err)?;
            for _ in 0..n_stats {
                let key = r.get_str().map_err(store_err)?;
                let arity = r.get_u32().map_err(store_err)? as usize;
                let mut counts = Vec::with_capacity(arity);
                for _ in 0..arity {
                    counts.push(r.get_u64().map_err(store_err)? as usize);
                }
                cat.stats.insert(key, counts);
            }
        }
        Ok(cat)
    }
}

impl SchemaSource for Catalog {
    fn table_schema(&self, table: &str) -> Option<Schema> {
        let key = table.to_ascii_uppercase();
        if let Some(schema) = stat_views::stat_view_schema(&key) {
            return Some(schema);
        }
        self.tables.get(&key).map(|f| f.schema().clone())
    }
}

impl TableProvider for Catalog {
    fn get_table(&self, table: &str) -> Option<HeapFile> {
        let key = table.to_ascii_uppercase();
        if stat_views::is_stat_view(&key) {
            // System views scan like tables but are never access-counted
            // themselves: they report the registry, they don't feed it.
            return self.stat_view_file(&key);
        }
        let file = self.tables.get(&key).cloned();
        if let Some(f) = &file {
            // Every heap-file fetch is the head of a scan (operators pull
            // the file once, then iterate its pages), so this one seam
            // charges both the scan and its tuple volume. It also sits on
            // nested iteration's per-binding loop, so it goes through the
            // pre-resolved counter cache — one relaxed load when disabled,
            // two relaxed adds when enabled, never the registry map lock.
            // Pure side-state: counted I/O is untouched, figures cannot
            // move.
            if self.stats_registry.enabled() {
                if let Some(t) = self.counters.get(&key) {
                    let shard = thread_shard();
                    t.scans.add(shard, 1);
                    t.tuples_read.add(shard, f.tuple_count() as u64);
                }
            }
        }
        file
    }

    fn get_indexes(&self, table: &str) -> Vec<Arc<BTreeIndex>> {
        self.indexes(table).to_vec()
    }

    fn table_generation(&self, table: &str) -> Option<u64> {
        let key = table.to_ascii_uppercase();
        self.tables.contains_key(&key).then(|| self.generation(&key))
    }

    fn cache_epoch(&self) -> u64 {
        self.epoch
    }

    fn note_index_probes(&self, table: &str, probes: u64) {
        if self.stats_registry.enabled() {
            if let Some(t) = self.counters.get(&table.to_ascii_uppercase()) {
                t.index_probes.add(thread_shard(), probes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsql_types::{Column, ColumnType, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("A", ColumnType::Int),
            Column::new("B", ColumnType::Int),
        ])
    }

    #[test]
    fn create_insert_and_read_back() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        let n = cat
            .insert(
                "t",
                vec![
                    Tuple::new(vec![Value::Int(1), Value::Int(2)]),
                    Tuple::new(vec![Value::Int(3), Value::Int(4)]),
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
        let file = cat.get_table("T").unwrap();
        assert_eq!(file.tuple_count(), 2);
        // Columns got requalified by the table name.
        assert!(file.schema().resolve(Some("T"), "A").is_ok());
    }

    #[test]
    fn duplicate_create_fails() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        assert!(cat.create_table("t", schema()).is_err());
    }

    #[test]
    fn insert_checks_arity() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        assert!(cat.insert("T", vec![Tuple::new(vec![Value::Int(1)])]).is_err());
    }

    #[test]
    fn drop_table_removes() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        cat.drop_table("T").unwrap();
        assert!(cat.get_table("T").is_none());
        assert!(cat.drop_table("T").is_err());
    }

    #[test]
    fn stat_view_names_are_reserved() {
        let mut cat = Catalog::new(Storage::with_defaults());
        assert!(cat.create_table("nsql_stat_tables", schema()).is_err());
        let rel = Relation::empty(schema());
        assert!(cat.load_table("NSQL_STAT_CACHE", &rel).is_err());
    }

    #[test]
    fn get_table_serves_stat_views_and_counts_base_scans() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        cat.insert("T", vec![Tuple::new(vec![Value::Int(1), Value::Int(2)])]).unwrap();
        let _ = cat.get_table("T").unwrap();
        let _ = cat.get_table("T").unwrap();
        cat.refresh_stat_views(["nsql_stat_tables"]);
        let view = cat.get_table("nsql_stat_tables").unwrap();
        let rows: Vec<_> = view.scan(cat.storage()).collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Str("T".into()));
        assert_eq!(rows[0].get(1), &Value::Int(2), "two scans of T");
        assert_eq!(rows[0].get(4), &Value::Int(1), "one tuple written");
        // Views have a schema but no generation (uncacheable) and are
        // absent from the base-table list.
        assert!(cat.table_schema("NSQL_STAT_TABLES").is_some());
        assert!(cat.table_generation("NSQL_STAT_TABLES").is_none());
        assert!(!cat.table_names().contains(&"NSQL_STAT_TABLES"));
    }

    #[test]
    fn snapshot_roundtrips_distinct_counts() {
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        cat.insert(
            "T",
            vec![
                Tuple::new(vec![Value::Int(1), Value::Int(7)]),
                Tuple::new(vec![Value::Int(2), Value::Int(7)]),
                Tuple::new(vec![Value::Int(2), Value::Int(8)]),
            ],
        )
        .unwrap();
        assert_eq!(cat.distinct_count("T", 0), Some(2));
        assert_eq!(cat.distinct_count("T", 1), Some(2));
        let snap = cat.snapshot();
        let restored = Catalog::restore(Storage::with_defaults(), Some(&snap)).unwrap();
        assert_eq!(restored.distinct_count("T", 0), Some(2));
        assert_eq!(restored.distinct_count("T", 1), Some(2));
        assert_eq!(restored.distinct_count("T", 9), None);
    }

    #[test]
    fn v1_snapshots_still_restore_without_stats() {
        // Hand-build a v1 image: same layout, version 1, no stats trailer.
        let mut cat = Catalog::new(Storage::with_defaults());
        cat.create_table("T", schema()).unwrap();
        let v2 = cat.snapshot();
        let mut w = ByteWriter::new();
        w.put_u32(1);
        let mut v1 = w.into_bytes();
        // Body up to the stats trailer: everything after the version word,
        // minus the trailer this catalog wrote (one u32 count + one entry).
        let body_start = 4;
        let mut trailer = ByteWriter::new();
        trailer.put_u32(cat_stats_len(&cat) as u32);
        for (key, counts) in cat_stats(&cat) {
            trailer.put_str(key);
            trailer.put_u32(counts.len() as u32);
            for &d in counts {
                trailer.put_u64(d as u64);
            }
        }
        let trailer_len = trailer.into_bytes().len();
        v1.extend_from_slice(&v2[body_start..v2.len() - trailer_len]);
        let restored = Catalog::restore(Storage::with_defaults(), Some(&v1)).unwrap();
        assert!(restored.get_table("T").is_some());
        assert_eq!(restored.distinct_count("T", 0), None, "v1 carries no stats");
        // Unknown future versions are still rejected.
        let mut bad = ByteWriter::new();
        bad.put_u32(99);
        assert!(Catalog::restore(Storage::with_defaults(), Some(&bad.into_bytes())).is_err());
    }

    fn cat_stats(cat: &Catalog) -> &BTreeMap<String, Vec<usize>> {
        &cat.stats
    }

    fn cat_stats_len(cat: &Catalog) -> usize {
        cat.stats.len()
    }
}
