#![warn(missing_docs)]

//! Database facade: catalog, SQL entry point, evaluation strategies, and
//! EXPLAIN.
//!
//! [`Database`] ties the workspace together:
//!
//! ```text
//!   SQL text ──parse──▶ QueryBlock
//!        │
//!        ├── Strategy::NestedIteration ──▶ nsql-engine::NestedIter
//!        │        (System R reference semantics, the paper's baseline)
//!        │
//!        └── Strategy::Transform ──▶ nsql-core::transform_query
//!                 │      (NEST-N-J / NEST-JA2 / buggy NEST-JA / NEST-G)
//!                 ▼
//!            TransformPlan ──▶ plan_exec (temp tables, join-method choice)
//!                 ▼
//!            canonical flat query ──▶ physical join tree ──▶ result
//! ```
//!
//! All I/O flows through the counted buffer pool, so
//! [`Database::query_with`] can report the page-I/O cost of each strategy —
//! the paper's figure of merit.

pub mod catalog;
pub mod database;
pub mod error;
pub mod explain;
pub mod options;
pub mod plan_exec;
pub mod result_cache;
pub mod stat_views;

pub use catalog::Catalog;
pub use database::{Database, OpenReport, QueryOutcome};
pub use error::DbError;
pub use explain::{ExplainReport, ObsReport, PredictedCost, TempStat};
pub use nsql_cache::{CacheStats, QueryCache};
pub use options::{
    CacheMode, DuplicateSemantics, Durability, ExecMode, IndexUse, JoinPolicy, QueryOptions,
    Strategy,
};

/// Result alias.
pub type Result<T> = std::result::Result<T, DbError>;
