//! The queryable `nsql_stat_*` system views.
//!
//! Four virtual tables expose the cumulative [`StatsRegistry`] through the
//! ordinary query path — plain SELECTs, nested blocks, EXPLAIN, every
//! strategy — by materializing registry snapshots as heap files on
//! *system pages* (uncounted, unbuffered, memory-only; see
//! `nsql_storage::SYSTEM_PAGE_BASE`). Reading statistics therefore moves
//! no counter that statistics report: the invariant the whole repo's
//! figures depend on.
//!
//! | view                   | one row per | contents                       |
//! |------------------------|-------------|--------------------------------|
//! | `nsql_stat_tables`     | base table  | scans, index probes, tuples    |
//! | `nsql_stat_statements` | fingerprint | calls, wall time, percentiles  |
//! | `nsql_stat_cache`      | database    | lifetime result-cache counters |
//! | `nsql_stat_storage`    | database    | page I/O, buffer, WAL, commits |
//!
//! Views are refreshed once per statement for exactly the views the
//! statement references (nested blocks included), so every scan within one
//! statement sees a single consistent snapshot.

use nsql_obs::stats::{StatsRegistry, StatsSnapshot};
use nsql_storage::Storage;
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};

/// `nsql_stat_tables` — per-table access counters.
pub const STAT_TABLES: &str = "NSQL_STAT_TABLES";
/// `nsql_stat_statements` — per-fingerprint aggregates.
pub const STAT_STATEMENTS: &str = "NSQL_STAT_STATEMENTS";
/// `nsql_stat_cache` — lifetime result-cache counters.
pub const STAT_CACHE: &str = "NSQL_STAT_CACHE";
/// `nsql_stat_storage` — storage-layer counters.
pub const STAT_STORAGE: &str = "NSQL_STAT_STORAGE";

/// All system view names (uppercase, the catalog's key form).
pub const STAT_VIEWS: [&str; 4] = [STAT_TABLES, STAT_STATEMENTS, STAT_CACHE, STAT_STORAGE];

/// Whether `name` (any case) names a system view.
pub fn is_stat_view(name: &str) -> bool {
    STAT_VIEWS.iter().any(|v| v.eq_ignore_ascii_case(name))
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn cols(view: &str, spec: &[(&str, ColumnType)]) -> Schema {
    Schema::new(spec.iter().map(|(n, t)| Column::qualified(view, *n, *t)).collect())
}

/// The schema of a system view (`None` for non-view names). Columns are
/// qualified by the view name, exactly like a stored table's.
pub fn stat_view_schema(name: &str) -> Option<Schema> {
    let key = name.to_ascii_uppercase();
    Some(match key.as_str() {
        STAT_TABLES => cols(
            &key,
            &[
                ("TABLE_NAME", ColumnType::Str),
                ("SCANS", ColumnType::Int),
                ("INDEX_PROBES", ColumnType::Int),
                ("TUPLES_READ", ColumnType::Int),
                ("TUPLES_WRITTEN", ColumnType::Int),
            ],
        ),
        STAT_STATEMENTS => cols(
            &key,
            &[
                ("QUERY", ColumnType::Str),
                ("CALLS", ColumnType::Int),
                ("ERRORS", ColumnType::Int),
                ("REFUSALS", ColumnType::Int),
                ("TOTAL_US", ColumnType::Int),
                ("MIN_US", ColumnType::Int),
                ("MAX_US", ColumnType::Int),
                ("P50_US", ColumnType::Int),
                ("P95_US", ColumnType::Int),
                ("P99_US", ColumnType::Int),
                ("READS", ColumnType::Int),
                ("WRITES", ColumnType::Int),
                ("STRATEGY", ColumnType::Str),
                ("EXEC_MODE", ColumnType::Str),
            ],
        ),
        STAT_CACHE => cols(
            &key,
            &[
                ("HITS", ColumnType::Int),
                ("MISSES", ColumnType::Int),
                ("DECLINES", ColumnType::Int),
                ("EVICTIONS", ColumnType::Int),
                ("INVALIDATIONS", ColumnType::Int),
                ("ENTRIES", ColumnType::Int),
                ("BYTES", ColumnType::Int),
            ],
        ),
        STAT_STORAGE => cols(
            &key,
            &[
                ("READS", ColumnType::Int),
                ("WRITES", ColumnType::Int),
                ("BUF_HITS", ColumnType::Int),
                ("BUF_MISSES", ColumnType::Int),
                ("LIVE_PAGES", ColumnType::Int),
                ("RESIDENT_PAGES", ColumnType::Int),
                ("DURABLE", ColumnType::Int),
                ("WAL_BYTES", ColumnType::Int),
                ("COMMITS", ColumnType::Int),
                ("CHECKPOINTS", ColumnType::Int),
            ],
        ),
        _ => return None,
    })
}

/// Build the current contents of one system view.
///
/// `base_tables` is the catalog's live table list (name order): the
/// tables view reports a row for every base table even before its first
/// access, merged with any registry counters (including counters for
/// since-dropped tables). Reads of `registry` and `storage` are pure
/// loads — assembling a view perturbs nothing it reports.
pub fn stat_view_relation(
    name: &str,
    registry: &StatsRegistry,
    base_tables: &[String],
    storage: &Storage,
) -> Option<Relation> {
    let key = name.to_ascii_uppercase();
    let schema = stat_view_schema(&key)?;
    let snap = registry.snapshot();
    let tuples: Vec<Tuple> = match key.as_str() {
        STAT_TABLES => tables_rows(&snap, base_tables),
        STAT_STATEMENTS => snap
            .statements
            .iter()
            .map(|s| {
                Tuple::new(vec![
                    Value::Str(s.query.clone()),
                    int(s.calls),
                    int(s.errors),
                    int(s.refusals),
                    int(s.total_us),
                    int(s.min_us),
                    int(s.max_us),
                    int(s.p50_us),
                    int(s.p95_us),
                    int(s.p99_us),
                    int(s.reads),
                    int(s.writes),
                    Value::Str(s.strategy.clone()),
                    Value::Str(s.exec_mode.clone()),
                ])
            })
            .collect(),
        STAT_CACHE => {
            let c = snap.cache;
            vec![Tuple::new(vec![
                int(c.hits),
                int(c.misses),
                int(c.declines),
                int(c.evictions),
                int(c.invalidations),
                int(c.entries),
                int(c.bytes),
            ])]
        }
        STAT_STORAGE => {
            let io = storage.io_snapshot();
            let durable = storage.durable();
            vec![Tuple::new(vec![
                int(io.reads),
                int(io.writes),
                int(io.hits),
                int(io.misses),
                int(storage.live_pages() as u64),
                int(storage.resident_pages() as u64),
                int(u64::from(durable.is_some())),
                int(durable.map_or(0, |d| d.wal_len())),
                int(durable.map_or(0, |d| d.commits())),
                int(durable.map_or(0, |d| d.checkpoints())),
            ])]
        }
        _ => return None,
    };
    Some(Relation::new(schema, tuples).expect("stat view rows match their schema"))
}

/// One row per base table (name order), merged with registry counters;
/// registry entries for tables no longer in the catalog are appended so
/// history survives drops.
fn tables_rows(snap: &StatsSnapshot, base_tables: &[String]) -> Vec<Tuple> {
    let mut rows = Vec::new();
    let mut covered: Vec<&str> = Vec::new();
    for name in base_tables {
        let t = snap.tables.iter().find(|t| &t.table == name);
        covered.push(name.as_str());
        rows.push(Tuple::new(vec![
            Value::Str(name.clone()),
            int(t.map_or(0, |t| t.scans)),
            int(t.map_or(0, |t| t.index_probes)),
            int(t.map_or(0, |t| t.tuples_read)),
            int(t.map_or(0, |t| t.tuples_written)),
        ]));
    }
    for t in &snap.tables {
        if !covered.contains(&t.table.as_str()) {
            rows.push(Tuple::new(vec![
                Value::Str(t.table.clone()),
                int(t.scans),
                int(t.index_probes),
                int(t.tuples_read),
                int(t.tuples_written),
            ]));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_names_resolve_case_insensitively() {
        assert!(is_stat_view("nsql_stat_statements"));
        assert!(is_stat_view("NSQL_STAT_TABLES"));
        assert!(!is_stat_view("PARTS"));
        assert!(stat_view_schema("nsql_stat_cache").is_some());
        assert!(stat_view_schema("SUPPLY").is_none());
    }

    #[test]
    fn statements_view_rows_match_schema_and_registry() {
        let st = Storage::with_defaults();
        let reg = StatsRegistry::new(true);
        reg.record_statement(&nsql_obs::stats::StatementSample {
            fingerprint: "SELECT A FROM T WHERE B = ?".into(),
            micros: 90,
            reads: 3,
            writes: 1,
            strategy: "batched".into(),
            exec_mode: "row".into(),
            error: false,
            refusals: 0,
        });
        let rel = stat_view_relation(STAT_STATEMENTS, &reg, &[], &st).unwrap();
        assert_eq!(rel.tuples().len(), 1);
        let t = &rel.tuples()[0];
        assert_eq!(t.get(0), &Value::Str("SELECT A FROM T WHERE B = ?".into()));
        assert_eq!(t.get(1), &Value::Int(1)); // calls
        // p50 of one 90us sample: bucket upper of bucket_of(90) = 127.
        assert_eq!(t.get(7), &Value::Int(127));
    }

    #[test]
    fn tables_view_includes_untouched_base_tables() {
        let st = Storage::with_defaults();
        let reg = StatsRegistry::new(true);
        reg.table("OLD").unwrap().scans.add(0, 4);
        let rel = stat_view_relation(
            STAT_TABLES,
            &reg,
            &["PARTS".to_string(), "SUPPLY".to_string()],
            &st,
        )
        .unwrap();
        let names: Vec<&Value> = rel.tuples().iter().map(|t| t.get(0)).collect();
        assert_eq!(
            names,
            vec![
                &Value::Str("PARTS".into()),
                &Value::Str("SUPPLY".into()),
                &Value::Str("OLD".into())
            ]
        );
        assert_eq!(rel.tuples()[2].get(1), &Value::Int(4));
    }

    #[test]
    fn storage_view_reports_io_without_perturbing_it() {
        let st = Storage::with_defaults();
        let before = st.io_snapshot();
        let rel = stat_view_relation(STAT_STORAGE, &StatsRegistry::new(true), &[], &st).unwrap();
        assert_eq!(rel.tuples().len(), 1);
        let after = st.io_snapshot();
        assert_eq!(before, after, "assembling the view must not move counters");
    }
}
