//! Physical execution of transformation output.
//!
//! Executes the [`LogicalPlan`] temporaries and the canonical flat query of
//! a [`TransformPlan`], choosing join methods per [`JoinPolicy`] — the
//! paper's point is precisely that after transformation "the query
//! optimizer can choose a merge join method in implementing the joins".
//!
//! Sort-order metadata rides along with every intermediate so the executor
//! can harvest the savings Section 7.4 enumerates: `Rt2` is created in join
//! column order; a merge join emits its result in key order, so the GROUP
//! BY above it needs no sort; `Rt` leaves the GROUP BY in join-column order
//! and meets the final merge join pre-sorted.

use crate::error::DbError;
use crate::explain::TempStat;
use crate::options::{IndexUse, JoinPolicy};
use crate::result_cache::{replay_temp, temp_keys, CacheCtx, TempKey};
use crate::Result;
use nsql_cache::{judge_rewrite, RewriteJudgement, TempEntry};
use nsql_core::cost::{index_nested_join_cost, index_restrict_cost, sort_cost};
use nsql_core::{JoinPred, LogicalJoinKind, LogicalPlan, TransformPlan};
use nsql_engine::{AggSpec, CExpr, CPred, Exec, JoinKind, Projector, TableProvider};
use nsql_index::{BTreeIndex, KeyBound};
use nsql_storage::sort::SortKey;
use nsql_storage::HeapFile;
use nsql_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, Operand, Predicate, QueryBlock, ScalarExpr, SortDir,
};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Run `f` under a fresh per-operator metrics entry when the executor has
/// observability attached; a plain call otherwise.
///
/// The wrapper records wall time and the storage-snapshot page-I/O delta;
/// engine internals (row counts, morsel claims, hash build/probe phases)
/// record into the same operator through the executor's "current op" slot.
/// `rows_in`/`rows` only apply when the engine recorded nothing itself, so
/// nothing is double-counted.
fn observed<R, E>(
    exec: &Exec,
    label: &str,
    rows_in: u64,
    rows: impl FnOnce(&R) -> u64,
    f: impl FnOnce() -> std::result::Result<R, E>,
) -> std::result::Result<R, E> {
    let Some(obs) = exec.obs().cloned() else { return f() };
    let op = obs.registry.op(label);
    let before = exec.storage().io_snapshot();
    let t0 = Instant::now();
    let out = obs.with_current(Arc::clone(&op), f);
    op.wall_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let d = exec.storage().io_snapshot().since(&before);
    op.reads.fetch_add(d.reads, Ordering::Relaxed);
    op.writes.fetch_add(d.writes, Ordering::Relaxed);
    op.hits.fetch_add(d.hits, Ordering::Relaxed);
    op.misses.fetch_add(d.misses, Ordering::Relaxed);
    if op.rows_in.total() == 0 && rows_in > 0 {
        op.rows_in.add(0, rows_in);
    }
    if let Ok(r) = &out {
        if op.rows_out.total() == 0 {
            op.rows_out.add(0, rows(r));
        }
    }
    out
}

/// A heap file plus the (prefix) column indices it is sorted by.
#[derive(Clone)]
pub struct PlanOutput {
    /// The materialized data.
    pub file: HeapFile,
    /// Output column indices forming the current sort-order prefix
    /// (empty = unknown order).
    pub sorted_by: Vec<usize>,
    /// B+tree indexes still valid for this output. Non-empty only for
    /// unmodified base-table scans (requalifying by an alias keeps column
    /// positions, so the indexes survive it); every transforming operator
    /// clears it.
    pub indexes: Vec<Arc<BTreeIndex>>,
}

/// Executor for logical plans and canonical queries over a base provider
/// plus an overlay of temporary tables.
pub struct PlanExecutor<T: TableProvider> {
    exec: Exec,
    base: T,
    temps: HashMap<String, PlanOutput>,
    policy: JoinPolicy,
    index_use: IndexUse,
    cache: Option<CacheCtx>,
    /// EXPLAIN-style log of physical decisions.
    pub log: Vec<String>,
}

impl<T: TableProvider> PlanExecutor<T> {
    /// New executor over `base` with the given join policy.
    pub fn new(exec: Exec, base: T, policy: JoinPolicy) -> Self {
        let mut log = Vec::new();
        if exec.vectorized() {
            log.push(
                "exec mode: vectorized (batch kernels, per-operator row fallback)"
                    .to_string(),
            );
        }
        PlanExecutor {
            exec,
            base,
            temps: HashMap::new(),
            policy,
            index_use: IndexUse::default(),
            cache: None,
            log,
        }
    }

    /// Change whether index paths may be taken (default: cost-based).
    pub fn set_index_use(&mut self, index_use: IndexUse) {
        self.index_use = index_use;
    }

    /// Attach the cross-query result cache for temp materializations.
    pub fn set_cache(&mut self, ctx: CacheCtx) {
        self.cache = Some(ctx);
    }

    /// The underlying operator executor.
    pub fn exec(&self) -> &Exec {
        &self.exec
    }

    /// Change the join policy mid-plan — the Section-7.4 ablation (E11)
    /// chooses the temp-creation join method and the final join method
    /// independently.
    pub fn set_policy(&mut self, policy: JoinPolicy) {
        self.policy = policy;
    }

    /// Register a temporary table.
    pub fn register_temp(&mut self, name: &str, out: PlanOutput) {
        self.temps.insert(name.to_ascii_uppercase(), out);
    }

    /// A registered temporary, if present.
    pub fn temp(&self, name: &str) -> Option<&PlanOutput> {
        self.temps.get(&name.to_ascii_uppercase())
    }

    /// Drop all temporary tables, freeing their pages.
    pub fn drop_temps(&mut self) {
        for (_, out) in self.temps.drain() {
            out.file.drop_pages(self.exec.storage());
        }
    }

    /// Sizes of the registered temporaries in name order — the measured
    /// inputs to the Section-7 predicted-vs-actual cost comparison.
    pub fn temp_stats(&self) -> Vec<TempStat> {
        let mut v: Vec<TempStat> = self
            .temps
            .iter()
            .map(|(name, out)| TempStat {
                name: name.clone(),
                tuples: out.file.tuple_count(),
                pages: out.file.page_count(),
            })
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    fn lookup(&self, name: &str) -> Result<PlanOutput> {
        let key = name.to_ascii_uppercase();
        if let Some(t) = self.temps.get(&key) {
            return Ok(t.clone());
        }
        match self.base.get_table(&key) {
            Some(file) => Ok(PlanOutput {
                file,
                sorted_by: vec![],
                indexes: self.base.get_indexes(&key),
            }),
            None => Err(DbError::Engine(nsql_engine::EngineError::UnknownTable(key))),
        }
    }

    // ----------------------------------------------------------- TransformPlan

    /// Execute a full transformation plan: materialize the temporaries in
    /// order, then run the canonical query. Set `force_distinct` to apply a
    /// final duplicate elimination (duplicate-preserving mode).
    pub fn execute_transform_plan(
        &mut self,
        plan: &TransformPlan,
        force_distinct: bool,
    ) -> Result<Relation> {
        match self.cache.clone() {
            Some(ctx) if !plan.temps.is_empty() => {
                self.materialize_temps_cached(&ctx, plan)?
            }
            _ => self.materialize_temps(plan, None)?,
        }
        self.execute_flat_query(&plan.canonical, force_distinct)
    }

    /// Cold materialization of every temp, optionally recording each
    /// one's page-event trace and publishing it afterwards (the cache-miss
    /// path). Recording piggybacks on the unchanged execution — a miss is
    /// byte-identical to running with the cache off by construction.
    fn materialize_temps(
        &mut self,
        plan: &TransformPlan,
        publish: Option<(&CacheCtx, &[TempKey])>,
    ) -> Result<()> {
        // Published entry ids by uppercased temp name, recorded into
        // dependents' `deps` so a later hit only accepts this exact set.
        let mut published: HashMap<String, u64> = HashMap::new();
        for (i, temp) in plan.temps.iter().enumerate() {
            let exec = self.exec.clone();
            if publish.is_some() {
                exec.storage().start_recording();
            }
            let out = observed(
                &exec,
                &format!("materialize {}", temp.name),
                0,
                |o: &PlanOutput| o.file.tuple_count() as u64,
                || self.run_plan(&temp.plan),
            );
            let trace = publish.is_some().then(|| exec.storage().take_recording());
            let out = out?;
            let schema = out.file.schema().requalify(&temp.name);
            let file = out.file.with_schema(schema);
            self.log_materialize(&temp.name, &file, &out.sorted_by);
            if let Some((ctx, keys)) = publish {
                let key = &keys[i];
                let output_pages = file
                    .page_ids()
                    .iter()
                    .map(|&pid| (pid, exec.storage().read_page_tuples_uncounted(pid)))
                    .collect();
                let deps = key
                    .dep_names
                    .iter()
                    .map(|n| (n.clone(), published[n]))
                    .collect();
                let id = ctx.cache.publish_temp(TempEntry {
                    text: key.text.clone(),
                    fingerprint: ctx.fingerprint.clone(),
                    bases: key.bases.clone(),
                    epoch: ctx.epoch,
                    schema: file.schema().clone(),
                    output_pages,
                    tuple_count: file.tuple_count(),
                    sorted_by: out.sorted_by.clone(),
                    trace: trace.unwrap_or_default(),
                    deps,
                    view: key.view.clone(),
                });
                published.insert(temp.name.to_ascii_uppercase(), id);
                self.log.push(format!(
                    "cache: miss {} (recorded and published)",
                    temp.name
                ));
            }
            self.register_temp(
                &temp.name,
                PlanOutput { file, sorted_by: out.sorted_by, indexes: vec![] },
            );
        }
        Ok(())
    }

    /// The cache consult: exact hit on all temps → replay; otherwise
    /// (rewrite mode) derived hit on all temps → rebuild; otherwise report
    /// any sound-rewrite declines and fall through to record + publish.
    fn materialize_temps_cached(&mut self, ctx: &CacheCtx, plan: &TransformPlan) -> Result<()> {
        let Some(keys) = temp_keys(&plan.temps, |t| self.base.table_generation(t)) else {
            // A base table without a generation stamp can't be invalidated
            // soundly; run uncached.
            return self.materialize_temps(plan, None);
        };

        // All-or-nothing: a recorded trace references the page ids its
        // materialization saw, so mixing one temp's replay with another's
        // live run would charge reads against pages that no longer line
        // up. Either every temp replays or every temp runs and records.
        if let Some(selected) = self.select_entries(ctx, &keys, false) {
            ctx.cache.note_hits(keys.len() as u64);
            return self.replay_selected(plan, &selected);
        }

        if ctx.rewrite {
            // Same computation recorded under a different options
            // fingerprint: contents are fingerprint-independent, the
            // recorded I/O is not — rebuild from the cached tuples
            // (counted writes only) instead of replaying.
            if let Some(selected) = self.select_entries(ctx, &keys, true) {
                ctx.cache.note_hits(keys.len() as u64);
                return self.rebuild_selected(plan, &selected);
            }
            self.log_declines(ctx, &keys);
        }

        ctx.cache.note_misses(keys.len() as u64);
        self.materialize_temps(plan, Some((ctx, &keys)))
    }

    /// Pick a consistent entry per temp, in creation order. Each entry's
    /// recorded dependencies must name exactly the entries selected for
    /// the earlier temps; any mismatch (or any missing temp) fails the
    /// whole consult.
    fn select_entries(
        &self,
        ctx: &CacheCtx,
        keys: &[TempKey],
        any_fingerprint: bool,
    ) -> Option<Vec<Arc<TempEntry>>> {
        let mut chosen: HashMap<String, u64> = HashMap::new();
        let mut selected = Vec::with_capacity(keys.len());
        for key in keys {
            let (id, entry) = if any_fingerprint {
                ctx.cache.find_temp_any_fingerprint(
                    &key.text,
                    &ctx.fingerprint,
                    &key.bases,
                    ctx.epoch,
                )?
            } else {
                ctx.cache.find_temp(&key.text, &ctx.fingerprint, &key.bases, ctx.epoch)?
            };
            if !entry.deps.iter().all(|(n, did)| chosen.get(n) == Some(did)) {
                return None;
            }
            chosen.insert(key.name.to_ascii_uppercase(), id);
            selected.push(entry);
        }
        Some(selected)
    }

    /// Exact-hit path: recharge each temp's recorded page-event sequence
    /// and register the rebuilt (replayed-page) file. `pid_map` spans the
    /// whole plan so later temps' recorded reads of earlier temps land on
    /// their replayed pages.
    fn replay_selected(&mut self, plan: &TransformPlan, selected: &[Arc<TempEntry>]) -> Result<()> {
        let mut pid_map: HashMap<nsql_storage::PageId, nsql_storage::PageId> = HashMap::new();
        for (temp, entry) in plan.temps.iter().zip(selected) {
            let exec = self.exec.clone();
            let file = observed(
                &exec,
                &format!("materialize {}", temp.name),
                0,
                |f: &HeapFile| f.tuple_count() as u64,
                || -> Result<HeapFile> {
                    Ok(replay_temp(exec.storage(), entry, &mut pid_map))
                },
            )?;
            self.log_materialize(&temp.name, &file, &entry.sorted_by);
            self.log.push(format!(
                "cache: hit {} (exact; replayed {} page events)",
                temp.name,
                entry.trace.len()
            ));
            self.register_temp(
                &temp.name,
                PlanOutput { file, sorted_by: entry.sorted_by.clone(), indexes: vec![] },
            );
        }
        Ok(())
    }

    /// Derived-hit path (rewrite mode): rewrite the cached tuples into a
    /// fresh heap file. Stored tuple order is the recorded output order,
    /// so the entry's sort metadata stays physically true.
    fn rebuild_selected(&mut self, plan: &TransformPlan, selected: &[Arc<TempEntry>]) -> Result<()> {
        for (temp, entry) in plan.temps.iter().zip(selected) {
            let exec = self.exec.clone();
            let file = observed(
                &exec,
                &format!("materialize {}", temp.name),
                0,
                |f: &HeapFile| f.tuple_count() as u64,
                || -> Result<HeapFile> {
                    let tuples: Vec<Tuple> = entry
                        .output_pages
                        .iter()
                        .flat_map(|(_, ts)| ts.iter().cloned())
                        .collect();
                    Ok(HeapFile::from_tuples(exec.storage(), entry.schema.clone(), tuples))
                },
            )?;
            self.log_materialize(&temp.name, &file, &entry.sorted_by);
            self.log.push(format!(
                "cache: derived hit {} (rebuilt from cached aggregate view; I/O differs from a cold run)",
                temp.name
            ));
            self.register_temp(
                &temp.name,
                PlanOutput { file, sorted_by: entry.sorted_by.clone(), indexes: vec![] },
            );
        }
        Ok(())
    }

    /// Report why cached aggregate views could *not* answer this plan's
    /// aggregate temps — the Cohen-style soundness check in the negative.
    /// Declines are always sound: nothing is served here.
    fn log_declines(&mut self, ctx: &CacheCtx, keys: &[TempKey]) {
        for key in keys {
            let Some(requested) = &key.view else { continue };
            for cand in ctx.cache.agg_views(ctx.epoch) {
                let Some(view) = &cand.view else { continue };
                match judge_rewrite(requested, view) {
                    RewriteJudgement::Decline(reason) => {
                        ctx.cache.note_decline();
                        self.log.push(format!("cache: decline {}: {reason}", key.name));
                        break;
                    }
                    RewriteJudgement::Sound if cand.text != key.text => {
                        ctx.cache.note_decline();
                        self.log.push(format!(
                            "cache: decline {}: view shape matches a cached aggregate, \
                             but the plan texts differ; exact-text policy declines the rewrite",
                            key.name
                        ));
                        break;
                    }
                    _ => {}
                }
            }
        }
    }

    fn log_materialize(&mut self, name: &str, file: &HeapFile, sorted_by: &[usize]) {
        self.log.push(format!(
            "materialize {}: {} tuples, {} pages{}",
            name,
            file.tuple_count(),
            file.page_count(),
            if sorted_by.is_empty() { "" } else { " (sorted)" }
        ));
    }

    // ----------------------------------------------------------- LogicalPlan

    /// Execute a logical plan to a materialized heap file.
    pub fn run_plan(&mut self, plan: &LogicalPlan) -> Result<PlanOutput> {
        match plan {
            LogicalPlan::Scan { table, alias } => {
                let out = self.lookup(table)?;
                let name = alias.as_deref().unwrap_or(table);
                let schema = out.file.schema().requalify(name);
                Ok(PlanOutput {
                    file: out.file.with_schema(schema),
                    sorted_by: out.sorted_by,
                    indexes: out.indexes,
                })
            }
            LogicalPlan::Filter { input, pred } => {
                // Fuse a filter over an *inner* join into the join's
                // residual. Not valid for outer joins: a residual that
                // fails pads the left tuple, whereas a filter above the
                // join drops the padded row — exactly the distinction
                // behind the paper's §5.2 restriction-ordering warning.
                if let LogicalPlan::Join { left, right, kind: LogicalJoinKind::Inner, on } =
                    input.as_ref()
                {
                    return self.run_join(left, right, LogicalJoinKind::Inner, on, Some(pred));
                }
                let child = self.run_plan(input)?;
                if let Some(out) = self.try_index_restrict(&child, pred)? {
                    return Ok(out);
                }
                let cpred = CPred::compile(child.file.schema(), pred)?;
                let file = self.exec.filter(&child.file, &cpred)?;
                let drop_input = matches!(input.as_ref(), LogicalPlan::Scan { .. });
                if !drop_input {
                    child.file.drop_pages(self.exec.storage());
                }
                Ok(PlanOutput { file, sorted_by: child.sorted_by, indexes: vec![] })
            }
            LogicalPlan::Project { input, items, distinct } => {
                // Fuse Project(Filter(x)) into one restrict+project pass.
                let (src_plan, pred) = match input.as_ref() {
                    LogicalPlan::Filter { input: inner, pred } => (inner.as_ref(), Some(pred)),
                    other => (other, None),
                };
                let mut child = self.run_plan(src_plan)?;
                let mut drop_child = !matches!(src_plan, LogicalPlan::Scan { .. });
                let mut pred = pred;
                if let Some(p) = pred {
                    // The fused filter may route through an index first; the
                    // index pass applies the whole predicate, so the
                    // projection then runs unfiltered.
                    if let Some(filtered) = self.try_index_restrict(&child, p)? {
                        child = filtered;
                        drop_child = true;
                        pred = None;
                    }
                }
                let (exprs, out_schema) = compile_projection(child.file.schema(), items)?;
                let cpred = match pred {
                    Some(p) => CPred::compile(child.file.schema(), p)?,
                    None => CPred::always_true(),
                };
                let file = self.exec.restrict_project(
                    &child.file,
                    &cpred,
                    &exprs,
                    out_schema,
                    *distinct,
                )?;
                if drop_child {
                    child.file.drop_pages(self.exec.storage());
                }
                let sorted_by = if *distinct {
                    // Distinct projection leaves the file whole-tuple sorted.
                    (0..file.schema().arity()).collect()
                } else {
                    remap_sort(&child.sorted_by, &exprs)
                };
                Ok(PlanOutput { file, sorted_by, indexes: vec![] })
            }
            LogicalPlan::Join { left, right, kind, on } => {
                self.run_join(left, right, *kind, on, None)
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let child = self.run_plan(input)?;
                let schema = child.file.schema().clone();
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|c| schema.resolve(c.table.as_deref(), &c.column))
                    .collect::<std::result::Result<_, _>>()?;
                let mut specs = Vec::with_capacity(aggs.len());
                let mut out_cols: Vec<Column> = group_idx
                    .iter()
                    .map(|&i| {
                        let c = &schema.columns()[i];
                        Column::new(&c.name, c.ty)
                    })
                    .collect();
                for a in aggs {
                    let (spec, ty) = match &a.arg {
                        AggArg::Star => (AggSpec::count_star(), ColumnType::Int),
                        AggArg::Column(c) => {
                            let i = schema.resolve(c.table.as_deref(), &c.column)?;
                            let ty = match a.func {
                                AggFunc::Count => ColumnType::Int,
                                AggFunc::Avg => ColumnType::Float,
                                _ => schema.columns()[i].ty,
                            };
                            (AggSpec::on(a.func, i), ty)
                        }
                    };
                    specs.push(spec);
                    out_cols.push(Column::new(&a.alias, ty));
                }
                let presorted = !group_idx.is_empty()
                    && child.sorted_by.len() >= group_idx.len()
                    && child.sorted_by[..group_idx.len()] == group_idx[..];
                if !group_idx.is_empty() {
                    self.log.push(format!(
                        "group-by: {}",
                        if presorted { "input pre-sorted, no sort pass" } else { "sorting input" }
                    ));
                }
                let rows_in = child.file.tuple_count() as u64;
                let file = observed(
                    &self.exec,
                    "group-by",
                    rows_in,
                    |f: &HeapFile| f.tuple_count() as u64,
                    || {
                        self.exec.group_aggregate(
                            &child.file,
                            &group_idx,
                            &specs,
                            Schema::new(out_cols),
                            presorted,
                        )
                    },
                )?;
                if !matches!(input.as_ref(), LogicalPlan::Scan { .. }) {
                    child.file.drop_pages(self.exec.storage());
                }
                Ok(PlanOutput {
                    file,
                    sorted_by: (0..group_idx.len()).collect(),
                    indexes: vec![],
                })
            }
        }
    }

    fn run_join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        kind: LogicalJoinKind,
        on: &[JoinPred],
        residual: Option<&Predicate>,
    ) -> Result<PlanOutput> {
        let l = self.run_plan(left)?;
        let r = self.run_plan(right)?;
        let out = self.join_outputs(&l, &r, kind, on, residual, true)?;
        if !matches!(left, LogicalPlan::Scan { .. }) {
            l.file.drop_pages(self.exec.storage());
        }
        if !matches!(right, LogicalPlan::Scan { .. }) {
            r.file.drop_pages(self.exec.storage());
        }
        Ok(out)
    }

    /// Join two materialized inputs. With `materialize` false the result is
    /// returned in memory instead (final join of a canonical query).
    #[allow(clippy::too_many_arguments)]
    fn join_outputs(
        &mut self,
        l: &PlanOutput,
        r: &PlanOutput,
        kind: LogicalJoinKind,
        on: &[JoinPred],
        residual: Option<&Predicate>,
        materialize: bool,
    ) -> Result<PlanOutput> {
        let rel = self.join_to_rows(l, r, kind, on, residual, materialize)?;
        match rel {
            JoinResult::File(out) => Ok(out),
            JoinResult::Rows(_) => unreachable!("materialize=true returns a file"),
        }
    }

    fn join_collect(
        &mut self,
        l: &PlanOutput,
        r: &PlanOutput,
        kind: LogicalJoinKind,
        on: &[JoinPred],
        residual: Option<&Predicate>,
    ) -> Result<Relation> {
        match self.join_to_rows(l, r, kind, on, residual, false)? {
            JoinResult::Rows(rel) => Ok(rel),
            JoinResult::File(_) => unreachable!("materialize=false returns rows"),
        }
    }

    fn join_to_rows(
        &mut self,
        l: &PlanOutput,
        r: &PlanOutput,
        kind: LogicalJoinKind,
        on: &[JoinPred],
        residual: Option<&Predicate>,
        materialize: bool,
    ) -> Result<JoinResult> {
        let combined = l.file.schema().join(r.file.schema());
        let jkind = match kind {
            LogicalJoinKind::Inner => JoinKind::Inner,
            LogicalJoinKind::LeftOuter => JoinKind::LeftOuter,
        };
        // Split `on` into merge-able equality keys and the rest.
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        let mut rest: Vec<Predicate> = Vec::new();
        for p in on {
            let li = l.file.schema().try_resolve(p.left.table.as_deref(), &p.left.column);
            let ri = r.file.schema().try_resolve(p.right.table.as_deref(), &p.right.column);
            match (li, ri, p.op) {
                (Some(li), Some(ri), CompareOp::Eq) => {
                    lkeys.push(li);
                    rkeys.push(ri);
                }
                (Some(_), Some(_), _) => rest.push(Predicate::Compare {
                    left: Operand::Column(p.left.clone()),
                    op: p.op,
                    right: Operand::Column(p.right.clone()),
                }),
                _ => {
                    return Err(DbError::Engine(nsql_engine::EngineError::Internal(format!(
                        "join predicate {p} does not resolve against the join inputs"
                    ))))
                }
            }
        }
        if let Some(p) = residual {
            rest.push(p.clone());
        }
        let residual_pred = if rest.is_empty() {
            None
        } else {
            Some(CPred::compile(&combined, &Predicate::and(rest))?)
        };

        // §7.3 extension: an inner equi-join whose probe side is an
        // unmodified base table with a B+tree on the join key can run as an
        // index nested-loop join — NEST-JA2's back-join without a full
        // inner scan per outer tuple.
        if jkind == JoinKind::Inner && !lkeys.is_empty() {
            if let Some((ki, ix)) = self.pick_index_join(l, r, &lkeys, &rkeys) {
                return self.index_nl_join(
                    l,
                    r,
                    ix,
                    ki,
                    &lkeys,
                    &rkeys,
                    residual_pred,
                    materialize,
                );
            }
        }
        let method = if lkeys.is_empty() {
            PhysicalJoin::NestedLoop
        } else {
            self.pick_method(l, r, &lkeys, &rkeys)
        };
        let rows_in = (l.file.tuple_count() + r.file.tuple_count()) as u64;
        if method == PhysicalJoin::Hash {
            let label = format!("hash join ({} keys)", lkeys.len());
            self.log.push(format!("hash join ({} keys) [modern extension]", lkeys.len()));
            return if materialize {
                let file =
                    observed(&self.exec, &label, rows_in, |f: &HeapFile| f.tuple_count() as u64, || {
                        self.exec.hash_join(
                            &l.file,
                            &r.file,
                            &lkeys,
                            &rkeys,
                            residual_pred.as_ref(),
                            jkind,
                        )
                    })?;
                // Hash probe preserves the left input's order.
                Ok(JoinResult::File(PlanOutput {
                    file,
                    sorted_by: l.sorted_by.clone(),
                    indexes: vec![],
                }))
            } else {
                let rel =
                    observed(&self.exec, &label, rows_in, |rel: &Relation| rel.len() as u64, || {
                        self.exec.hash_join_collect(
                            &l.file,
                            &r.file,
                            &lkeys,
                            &rkeys,
                            residual_pred.as_ref(),
                            jkind,
                        )
                    })?;
                Ok(JoinResult::Rows(rel))
            };
        }
        if method == PhysicalJoin::Merge {
            let l_presorted = sorted_on(&l.sorted_by, &lkeys);
            let r_presorted = sorted_on(&r.sorted_by, &rkeys);
            self.log.push(format!(
                "merge join ({} keys){}{}",
                lkeys.len(),
                if l_presorted { ", left pre-sorted" } else { "" },
                if r_presorted { ", right pre-sorted" } else { "" },
            ));
            let label = format!("merge join ({} keys)", lkeys.len());
            if materialize {
                let file =
                    observed(&self.exec, &label, rows_in, |f: &HeapFile| f.tuple_count() as u64, || {
                        self.exec.merge_join(
                            &l.file,
                            &r.file,
                            &lkeys,
                            &rkeys,
                            residual_pred.as_ref(),
                            jkind,
                            l_presorted,
                            r_presorted,
                        )
                    })?;
                Ok(JoinResult::File(PlanOutput { file, sorted_by: lkeys, indexes: vec![] }))
            } else {
                let rel =
                    observed(&self.exec, &label, rows_in, |rel: &Relation| rel.len() as u64, || {
                        self.exec.merge_join_collect(
                            &l.file,
                            &r.file,
                            &lkeys,
                            &rkeys,
                            residual_pred.as_ref(),
                            jkind,
                            l_presorted,
                            r_presorted,
                        )
                    })?;
                Ok(JoinResult::Rows(rel))
            }
        } else {
            self.log.push(format!(
                "nested-loop join ({} equality keys folded into predicate)",
                lkeys.len()
            ));
            // Fold the keys back into the predicate.
            let mut preds: Vec<CPred> = Vec::new();
            for (li, ri) in lkeys.iter().zip(&rkeys) {
                preds.push(CPred::Cmp {
                    left: CExpr::Col(*li),
                    op: CompareOp::Eq,
                    right: CExpr::Col(l.file.schema().arity() + ri),
                });
            }
            if let Some(p) = residual_pred {
                preds.push(p);
            }
            let on_pred =
                if preds.is_empty() { CPred::always_true() } else { CPred::And(preds) };
            let label = format!("nested-loop join ({} keys)", lkeys.len());
            if materialize {
                let file =
                    observed(&self.exec, &label, rows_in, |f: &HeapFile| f.tuple_count() as u64, || {
                        self.exec.nl_join(&l.file, &r.file, &on_pred, jkind)
                    })?;
                // NL join preserves the left input's order.
                Ok(JoinResult::File(PlanOutput {
                    file,
                    sorted_by: l.sorted_by.clone(),
                    indexes: vec![],
                }))
            } else {
                let rel =
                    observed(&self.exec, &label, rows_in, |rel: &Relation| rel.len() as u64, || {
                        self.exec.nl_join_collect(&l.file, &r.file, &on_pred, jkind)
                    })?;
                Ok(JoinResult::Rows(rel))
            }
        }
    }

    /// Decide the physical method for an equi-join per the policy. The
    /// cost-based choice considers only the paper's two methods; hash join
    /// is a forced-only modern extension.
    fn pick_method(
        &self,
        l: &PlanOutput,
        r: &PlanOutput,
        lkeys: &[usize],
        rkeys: &[usize],
    ) -> PhysicalJoin {
        match self.policy {
            JoinPolicy::ForceNestedLoop => PhysicalJoin::NestedLoop,
            JoinPolicy::ForceMergeJoin => PhysicalJoin::Merge,
            JoinPolicy::ForceHashJoin => PhysicalJoin::Hash,
            JoinPolicy::CostBased => {
                let (nl, mj) = self.classic_join_costs(l, r, lkeys, rkeys);
                if mj < nl {
                    PhysicalJoin::Merge
                } else {
                    PhysicalJoin::NestedLoop
                }
            }
        }
    }

    /// Section-7 page costs for the paper's two join methods on these
    /// inputs: (nested loop, merge join).
    fn classic_join_costs(
        &self,
        l: &PlanOutput,
        r: &PlanOutput,
        lkeys: &[usize],
        rkeys: &[usize],
    ) -> (f64, f64) {
        let b = self.exec.storage().buffer_pages() as f64;
        let (lp, rp) = (l.file.page_count() as f64, r.file.page_count() as f64);
        let nl = if rp <= b - 1.0 {
            lp + rp
        } else {
            lp + l.file.tuple_count() as f64 * rp
        };
        let l_sort = if sorted_on(&l.sorted_by, lkeys) { 0.0 } else { sort_cost(lp, b) };
        let r_sort = if sorted_on(&r.sorted_by, rkeys) { 0.0 } else { sort_cost(rp, b) };
        (nl, l_sort + r_sort + lp + rp)
    }

    /// Whether an index nested-loop join applies and wins on this join
    /// step: the right side carries a B+tree whose key is one of the
    /// equi-join keys (of a comparable type class), and the policy/cost
    /// picture favors probing it. Returns the key position and index.
    fn pick_index_join(
        &mut self,
        l: &PlanOutput,
        r: &PlanOutput,
        lkeys: &[usize],
        rkeys: &[usize],
    ) -> Option<(usize, Arc<BTreeIndex>)> {
        if r.indexes.is_empty() {
            return None;
        }
        match (self.index_use, self.policy) {
            (IndexUse::Never, _) => return None,
            (IndexUse::Prefer, _) => {}
            // Cost-based index use only composes with the cost-based join
            // policy — forced classic policies stay forced.
            (IndexUse::CostBased, JoinPolicy::CostBased) => {}
            (IndexUse::CostBased, _) => return None,
        }
        let (ki, ix) = rkeys.iter().enumerate().find_map(|(ki, &rk)| {
            r.indexes
                .iter()
                .find(|ix| ix.key_col() == rk)
                .map(|ix| (ki, Arc::clone(ix)))
        })?;
        // Probe values must order identically in the index (total_cmp) and
        // in predicate evaluation (sql_cmp); mixed incomparable classes
        // would turn a type error into a silent empty result.
        let lty = l.file.schema().columns()[lkeys[ki]].ty;
        let rty = r.file.schema().columns()[rkeys[ki]].ty;
        if !same_type_class(lty, rty) {
            return None;
        }
        let st = ix.stats();
        let leaves_per_probe = if st.distinct_keys == 0 {
            1.0
        } else {
            (st.leaf_pages as f64 / st.distinct_keys as f64).ceil().max(1.0)
        };
        let icost = index_nested_join_cost(
            l.file.page_count() as f64,
            l.file.tuple_count() as f64,
            st.height as f64,
            leaves_per_probe,
        );
        let (nl, mj) = self.classic_join_costs(l, r, lkeys, rkeys);
        let use_ix = self.index_use == IndexUse::Prefer || icost < nl.min(mj);
        self.log.push(format!(
            "index join candidate {}: cost {:.1} vs nl {:.1} / mj {:.1} ({})",
            ix.name(),
            icost,
            nl,
            mj,
            if use_ix { "chose index" } else { "rejected" }
        ));
        use_ix.then_some((ki, ix))
    }

    /// Inner join by probing the right side's B+tree once per left tuple.
    /// Preserves the left input's order; join keys other than the probe
    /// key and any residual are applied to each candidate pair.
    #[allow(clippy::too_many_arguments)]
    fn index_nl_join(
        &mut self,
        l: &PlanOutput,
        r: &PlanOutput,
        ix: Arc<BTreeIndex>,
        ki: usize,
        lkeys: &[usize],
        rkeys: &[usize],
        residual: Option<CPred>,
        materialize: bool,
    ) -> Result<JoinResult> {
        let combined = l.file.schema().join(r.file.schema());
        let mut preds: Vec<CPred> = Vec::new();
        for (j, (li, ri)) in lkeys.iter().zip(rkeys).enumerate() {
            if j == ki {
                continue;
            }
            preds.push(CPred::Cmp {
                left: CExpr::Col(*li),
                op: CompareOp::Eq,
                right: CExpr::Col(l.file.schema().arity() + ri),
            });
        }
        if let Some(p) = residual {
            preds.push(p);
        }
        let extra = if preds.is_empty() { CPred::always_true() } else { CPred::And(preds) };
        self.log.push(format!(
            "index nested-loop join via {} ({} probes)",
            ix.name(),
            l.file.tuple_count()
        ));
        let label = format!("index-nl join ({})", ix.name());
        let storage = self.exec.storage().clone();
        let probe_col = lkeys[ki];
        let rows_in = l.file.tuple_count() as u64;
        note_index_probes(&self.base, &ix, rows_in);
        let gen_rows = || -> Result<Vec<Tuple>> {
            let mut rows = Vec::new();
            for lt in l.file.scan(&storage) {
                let key = lt.get(probe_col);
                if matches!(key, Value::Null) {
                    continue; // NULL never equals anything
                }
                for rt in ix.probe_eq(&storage, key) {
                    let mut vals = lt.values().to_vec();
                    vals.extend(rt.values().iter().cloned());
                    let t = Tuple::new(vals);
                    if extra.accepts(&t)? {
                        rows.push(t);
                    }
                }
            }
            Ok(rows)
        };
        if materialize {
            let file = observed(
                &self.exec,
                &label,
                rows_in,
                |f: &HeapFile| f.tuple_count() as u64,
                || {
                    let rows = gen_rows()?;
                    Ok::<_, DbError>(HeapFile::from_tuples(&storage, combined, rows))
                },
            )?;
            Ok(JoinResult::File(PlanOutput {
                file,
                sorted_by: l.sorted_by.clone(),
                indexes: vec![],
            }))
        } else {
            let rel = observed(
                &self.exec,
                &label,
                rows_in,
                |rel: &Relation| rel.len() as u64,
                || Relation::new(combined.clone(), gen_rows()?).map_err(DbError::from),
            )?;
            Ok(JoinResult::Rows(rel))
        }
    }

    /// Try to satisfy `pred` over `out` (a base-table scan with live
    /// indexes) through a B+tree range scan: find a sargable conjunct on an
    /// index key, cost the index path against the full scan, and — when
    /// chosen — return the fully filtered, key-ordered materialization.
    fn try_index_restrict(
        &mut self,
        out: &PlanOutput,
        pred: &Predicate,
    ) -> Result<Option<PlanOutput>> {
        if self.index_use == IndexUse::Never || out.indexes.is_empty() {
            return Ok(None);
        }
        let schema = out.file.schema();
        for conj in pred.conjuncts() {
            let Some((col, op, lit)) = sargable_conjunct(schema, conj) else { continue };
            let Some(ix) = out.indexes.iter().find(|ix| ix.key_col() == col) else {
                continue;
            };
            let ix = Arc::clone(ix);
            let (lo, hi) = bounds_for(op, lit);
            let st = ix.stats();
            let sel = ix.est_selectivity(&lo, &hi);
            let icost = index_restrict_cost(st.height as f64, st.leaf_pages as f64, sel);
            let scan = out.file.page_count() as f64;
            let use_ix = self.index_use == IndexUse::Prefer || icost < scan;
            self.log.push(format!(
                "index restrict via {}: est sel {:.3}, cost {:.1} vs scan {:.0} ({})",
                ix.name(),
                sel,
                icost,
                scan,
                if use_ix { "chose index" } else { "chose full scan" }
            ));
            if !use_ix {
                return Ok(None);
            }
            note_index_probes(&self.base, &ix, 1);
            // The whole predicate is re-applied to the range-scan output,
            // so the index only has to deliver a superset of the matches.
            let cpred = CPred::compile(schema, pred)?;
            let storage = self.exec.storage().clone();
            let out_schema = schema.clone();
            let key_col = ix.key_col();
            let file = observed(
                &self.exec,
                &format!("index scan {}", ix.name()),
                0,
                |f: &HeapFile| f.tuple_count() as u64,
                || -> Result<HeapFile> {
                    let mut rows = Vec::new();
                    for t in ix.range_scan(&storage, &lo, &hi) {
                        if cpred.accepts(&t)? {
                            rows.push(t);
                        }
                    }
                    Ok(HeapFile::from_tuples(&storage, out_schema, rows))
                },
            )?;
            return Ok(Some(PlanOutput {
                file,
                sorted_by: vec![key_col],
                indexes: vec![],
            }));
        }
        Ok(None)
    }

    // ------------------------------------------------------ canonical query

    /// Execute a flat (subquery-free) query block: left-deep joins in FROM
    /// order with extracted equi-keys, residual predicates inline, final
    /// projection / aggregation / DISTINCT / ORDER BY in memory.
    pub fn execute_flat_query(
        &mut self,
        q: &QueryBlock,
        force_distinct: bool,
    ) -> Result<Relation> {
        if q.from.is_empty() {
            return Err(DbError::Engine(nsql_engine::EngineError::Unsupported(
                "query with empty FROM".into(),
            )));
        }
        // Resolve inputs.
        let mut inputs: Vec<PlanOutput> = q
            .from
            .iter()
            .map(|t| {
                let out = self.lookup(&t.table)?;
                let schema = out.file.schema().requalify(t.effective_name());
                Ok(PlanOutput {
                    file: out.file.with_schema(schema),
                    sorted_by: out.sorted_by,
                    indexes: out.indexes,
                })
            })
            .collect::<Result<_>>()?;

        // Partition conjuncts into per-step join keys and residuals.
        let mut remaining: Vec<Predicate> = q
            .where_clause
            .as_ref()
            .map(|p| p.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();

        // Push single-table restrictions down into an index range scan
        // where one applies and wins (the §7 extension: NEST-JA2's
        // outer-column restriction takes the index path instead of riding
        // along as a join residual). Inner-join-only pipeline, so early
        // restriction is semantics-preserving.
        if self.index_use != IndexUse::Never {
            for (i, inp) in inputs.iter_mut().enumerate() {
                if inp.indexes.is_empty() {
                    continue;
                }
                let name = q.from[i].effective_name();
                let only_mine = |p: &Predicate| {
                    let refs = nsql_analyzer::resolve::predicate_column_refs(p);
                    !refs.is_empty()
                        && refs.iter().all(|c| c.table.as_deref() == Some(name))
                };
                let mine: Vec<Predicate> =
                    remaining.iter().filter(|p| only_mine(p)).cloned().collect();
                if mine.is_empty() {
                    continue;
                }
                if let Some(out) = self.try_index_restrict(inp, &Predicate::and(mine))? {
                    remaining.retain(|p| !only_mine(p));
                    // Register the filtered scan as a temporary so its
                    // pages are reclaimed with the others after the query.
                    let temp_name = format!("IXR_{name}");
                    self.register_temp(&temp_name, out.clone());
                    *inp = out;
                }
            }
        }

        let grouped = !q.group_by.is_empty() || q.has_aggregate_select();

        let mut acc = inputs[0].clone();
        let mut acc_names: Vec<String> = vec![q.from[0].effective_name().to_string()];
        for (step, next) in inputs.iter().enumerate().skip(1) {
            let next_name = q.from[step].effective_name().to_string();
            let is_last = step + 1 == inputs.len();
            // Pull out the predicates usable at this step.
            let mut keys: Vec<JoinPred> = Vec::new();
            let mut residual: Vec<Predicate> = Vec::new();
            let mut rest: Vec<Predicate> = Vec::new();
            for p in remaining.drain(..) {
                match classify_conjunct(&p, &acc_names, &next_name) {
                    ConjunctUse::JoinKey(jp) => keys.push(jp),
                    ConjunctUse::Residual => residual.push(p),
                    ConjunctUse::Later => rest.push(p),
                }
            }
            remaining = rest;
            let residual_pred =
                if residual.is_empty() { None } else { Some(Predicate::and(residual)) };
            let out = if is_last && !grouped && q.order_by.is_empty() && !q.distinct
                && !force_distinct && self.can_stream_final(q)
            {
                // Stream the final join straight into the projection.
                let rel = self.join_collect(
                    &acc,
                    next,
                    LogicalJoinKind::Inner,
                    &keys,
                    residual_pred.as_ref(),
                )?;
                return self.project_relation(q, rel, force_distinct);
            } else {
                self.join_outputs(
                    &acc,
                    next,
                    LogicalJoinKind::Inner,
                    &keys,
                    residual_pred.as_ref(),
                    true,
                )?
            };
            if step > 1 {
                // Intermediate accumulators are temporary files.
                acc.file.drop_pages(self.exec.storage());
            }
            acc = out;
            acc_names.push(next_name);
        }

        // Single-table case or non-streamable tail: apply leftover
        // predicates, then the SELECT phase.
        let leftover =
            if remaining.is_empty() { None } else { Some(Predicate::and(remaining)) };
        if grouped {
            return self.finish_grouped(q, acc, leftover, force_distinct);
        }
        let rel = match leftover {
            Some(p) => {
                let cpred = CPred::compile(acc.file.schema(), &p)?;
                let filtered = self.exec.filter(&acc.file, &cpred)?;
                let rel = self.exec.collect(&filtered);
                filtered.drop_pages(self.exec.storage());
                rel
            }
            None => self.exec.collect(&acc.file),
        };
        self.project_relation(q, rel, force_distinct)
    }

    fn can_stream_final(&self, q: &QueryBlock) -> bool {
        // Streaming projection needs plain column/literal select items.
        q.select.iter().all(|s| !matches!(s.expr, ScalarExpr::Aggregate(..)))
    }

    /// SELECT-phase over an in-memory join result (no aggregates).
    fn project_relation(
        &mut self,
        q: &QueryBlock,
        rel: Relation,
        force_distinct: bool,
    ) -> Result<Relation> {
        let schema = rel.schema().clone();
        let (exprs, out_schema) = compile_projection(&schema, &q.select)?;
        let projector = Projector::new(&exprs);
        let mut rows: Vec<Tuple> =
            rel.into_tuples().into_iter().map(|t| projector.apply(t)).collect();
        if q.distinct || force_distinct {
            rows.sort_by(Tuple::total_cmp);
            rows.dedup();
        }
        let mut out = Relation::new(out_schema, rows)?;
        if !q.order_by.is_empty() {
            out = sort_relation(out, &q.order_by)?;
        }
        Ok(out)
    }

    /// SELECT-phase with aggregation / GROUP BY.
    fn finish_grouped(
        &mut self,
        q: &QueryBlock,
        acc: PlanOutput,
        leftover: Option<Predicate>,
        force_distinct: bool,
    ) -> Result<Relation> {
        let working = match leftover {
            Some(p) => {
                let cpred = CPred::compile(acc.file.schema(), &p)?;
                self.exec.filter(&acc.file, &cpred)?
            }
            None => acc.file.clone(),
        };
        let schema = working.schema().clone();
        let group_idx: Vec<usize> = q
            .group_by
            .iter()
            .map(|c| schema.resolve(c.table.as_deref(), &c.column))
            .collect::<std::result::Result<_, _>>()?;
        // Aggregates in select order; group columns mapped by position.
        let mut specs = Vec::new();
        let mut out_cols = Vec::new();
        // Layout: [group cols..., aggs in select order]; then reorder to
        // select order.
        for &i in &group_idx {
            let c = &schema.columns()[i];
            out_cols.push(Column::new(&c.name, c.ty));
        }
        let mut select_slots: Vec<usize> = Vec::new(); // output index per select item
        for item in &q.select {
            match &item.expr {
                ScalarExpr::Column(c) => {
                    let i = schema.resolve(c.table.as_deref(), &c.column)?;
                    let pos = group_idx.iter().position(|&g| g == i).ok_or_else(|| {
                        DbError::Engine(nsql_engine::EngineError::Unsupported(format!(
                            "column {c} in SELECT is not in GROUP BY"
                        )))
                    })?;
                    select_slots.push(pos);
                }
                ScalarExpr::Aggregate(func, arg) => {
                    let (spec, ty) = match arg {
                        AggArg::Star => (AggSpec::count_star(), ColumnType::Int),
                        AggArg::Column(c) => {
                            let i = schema.resolve(c.table.as_deref(), &c.column)?;
                            let ty = match func {
                                AggFunc::Count => ColumnType::Int,
                                AggFunc::Avg => ColumnType::Float,
                                _ => schema.columns()[i].ty,
                            };
                            (AggSpec::on(*func, i), ty)
                        }
                    };
                    select_slots.push(group_idx.len() + specs.len());
                    specs.push(spec);
                    out_cols.push(Column::new(
                        item.alias.clone().unwrap_or_else(|| func.name().to_string()),
                        ty,
                    ));
                }
                ScalarExpr::Literal(_) => {
                    return Err(DbError::Engine(nsql_engine::EngineError::Unsupported(
                        "literal select items in grouped queries".into(),
                    )))
                }
            }
        }
        let presorted = !group_idx.is_empty()
            && acc.sorted_by.len() >= group_idx.len()
            && acc.sorted_by[..group_idx.len()] == group_idx[..];
        let grouped = observed(
            &self.exec,
            "group-by",
            working.tuple_count() as u64,
            |rel: &Relation| rel.len() as u64,
            || {
                self.exec.group_aggregate_collect(
                    &working,
                    &group_idx,
                    &specs,
                    Schema::new(out_cols.clone()),
                    presorted,
                )
            },
        )?;
        // Reorder columns to select order and rename per aliases.
        let mut final_cols = Vec::with_capacity(q.select.len());
        for (item, &slot) in q.select.iter().zip(&select_slots) {
            let base = &out_cols[slot];
            let name = item.alias.clone().unwrap_or_else(|| base.name.clone());
            final_cols.push(Column::new(name, base.ty));
        }
        let slot_exprs: Vec<CExpr> = select_slots.iter().map(|&s| CExpr::Col(s)).collect();
        let projector = Projector::new(&slot_exprs);
        let mut rows: Vec<Tuple> =
            grouped.into_tuples().into_iter().map(|t| projector.apply(t)).collect();
        if q.distinct || force_distinct {
            rows.sort_by(Tuple::total_cmp);
            rows.dedup();
        }
        let mut out = Relation::new(Schema::new(final_cols), rows)?;
        if !q.order_by.is_empty() {
            out = sort_relation(out, &q.order_by)?;
        }
        Ok(out)
    }
}

enum JoinResult {
    File(PlanOutput),
    Rows(Relation),
}

/// Physical join algorithm chosen for one join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhysicalJoin {
    NestedLoop,
    Merge,
    Hash,
}

/// How one conjunct participates in a join step.
enum ConjunctUse {
    JoinKey(JoinPred),
    Residual,
    Later,
}

/// Classify a conjunct relative to a join step combining `acc_names` (left)
/// with `next_name` (right).
fn classify_conjunct(p: &Predicate, acc_names: &[String], next_name: &str) -> ConjunctUse {
    let refs = nsql_analyzer::resolve::predicate_column_refs(p);
    let available = |c: &ColumnRef| {
        c.table
            .as_deref()
            .is_some_and(|t| t == next_name || acc_names.iter().any(|n| n == t))
    };
    if !refs.iter().all(|c| available(c)) {
        return ConjunctUse::Later;
    }
    // Equality column-column across the two sides becomes a join key.
    if let Predicate::Compare {
        left: Operand::Column(a),
        op,
        right: Operand::Column(b),
    } = p
    {
        let a_left = a.table.as_deref().is_some_and(|t| acc_names.iter().any(|n| n == t));
        let b_left = b.table.as_deref().is_some_and(|t| acc_names.iter().any(|n| n == t));
        if *op == CompareOp::Eq {
            if a_left && b.table.as_deref() == Some(next_name) {
                return ConjunctUse::JoinKey(JoinPred {
                    left: a.clone(),
                    op: *op,
                    right: b.clone(),
                });
            }
            if b_left && a.table.as_deref() == Some(next_name) {
                return ConjunctUse::JoinKey(JoinPred {
                    left: b.clone(),
                    op: op.flip(),
                    right: a.clone(),
                });
            }
        }
    }
    ConjunctUse::Residual
}

/// Compile a projection list to expressions and an output schema.
fn compile_projection(
    schema: &Schema,
    items: &[nsql_sql::SelectItem],
) -> Result<(Vec<CExpr>, Schema)> {
    let mut exprs = Vec::with_capacity(items.len());
    let mut cols = Vec::with_capacity(items.len());
    for item in items {
        match &item.expr {
            ScalarExpr::Column(c) => {
                let i = schema.resolve(c.table.as_deref(), &c.column)?;
                let base = &schema.columns()[i];
                exprs.push(CExpr::Col(i));
                cols.push(Column::new(
                    item.alias.clone().unwrap_or_else(|| base.name.clone()),
                    base.ty,
                ));
            }
            ScalarExpr::Literal(v) => {
                exprs.push(CExpr::Lit(v.clone()));
                cols.push(Column::new(
                    item.alias.clone().unwrap_or_else(|| "LITERAL".into()),
                    v.column_type().unwrap_or(ColumnType::Int),
                ));
            }
            ScalarExpr::Aggregate(..) => {
                return Err(DbError::Engine(nsql_engine::EngineError::Unsupported(
                    "aggregate in plain projection".into(),
                )))
            }
        }
    }
    Ok((exprs, Schema::new(cols)))
}

/// New sort-prefix after projecting through `exprs`.
fn remap_sort(sorted_by: &[usize], exprs: &[CExpr]) -> Vec<usize> {
    let mut out = Vec::new();
    for &src in sorted_by {
        match exprs.iter().position(|e| matches!(e, CExpr::Col(i) if *i == src)) {
            Some(j) => out.push(j),
            None => break, // prefix broken
        }
    }
    out
}

fn sorted_on(sorted_by: &[usize], keys: &[usize]) -> bool {
    sorted_by.len() >= keys.len() && sorted_by[..keys.len()] == keys[..]
}

/// Whether two column types order consistently under both the index's
/// total order and SQL comparison (the numeric tower is one class; every
/// other type only matches itself).
fn same_type_class(a: ColumnType, b: ColumnType) -> bool {
    let class = |t: ColumnType| match t {
        ColumnType::Int | ColumnType::Float => 0u8,
        ColumnType::Str => 1,
        ColumnType::Date => 2,
        ColumnType::Bool => 3,
    };
    class(a) == class(b)
}

/// Whether `v` is a literal an index on a column of type `ty` can bound:
/// non-null and of the same comparison class (so the B+tree's total order
/// agrees with SQL comparison, and a would-be type error cannot silently
/// become an empty range).
fn literal_matches_class(ty: ColumnType, v: &Value) -> bool {
    matches!(
        (ty, v),
        (ColumnType::Int | ColumnType::Float, Value::Int(_) | Value::Float(_))
            | (ColumnType::Str, Value::Str(_))
            | (ColumnType::Date, Value::Date(_))
            | (ColumnType::Bool, Value::Bool(_))
    )
}

/// Extract the sargable shape `column op literal` (either orientation) from
/// one conjunct: the column resolving in `schema`, the op a range predicate
/// (`=`, `<`, `<=`, `>`, `>=` — not `<>`), the literal class-compatible.
fn sargable_conjunct(
    schema: &Schema,
    p: &Predicate,
) -> Option<(usize, CompareOp, Value)> {
    let Predicate::Compare { left, op, right } = p else { return None };
    if *op == CompareOp::Ne {
        return None;
    }
    let (c, op, v) = match (left, right) {
        (Operand::Column(c), Operand::Literal(v)) => (c, *op, v),
        (Operand::Literal(v), Operand::Column(c)) => (c, op.flip(), v),
        _ => return None,
    };
    let i = schema.try_resolve(c.table.as_deref(), &c.column)?;
    literal_matches_class(schema.columns()[i].ty, v).then(|| (i, op, v.clone()))
}

/// Report a taken index path to the provider's statistics, resolving the
/// indexed table from the index's (qualified) schema. Pure side-state.
fn note_index_probes<T: TableProvider>(base: &T, ix: &BTreeIndex, probes: u64) {
    if let Some(table) = ix.schema().columns().first().and_then(|c| c.table.as_deref()) {
        base.note_index_probes(table, probes);
    }
}

/// Key-range bounds equivalent to `key op literal`.
fn bounds_for(op: CompareOp, v: Value) -> (KeyBound, KeyBound) {
    match op {
        CompareOp::Eq => (KeyBound::Incl(v.clone()), KeyBound::Incl(v)),
        CompareOp::Lt => (KeyBound::Unbounded, KeyBound::Excl(v)),
        CompareOp::Le => (KeyBound::Unbounded, KeyBound::Incl(v)),
        CompareOp::Gt => (KeyBound::Excl(v), KeyBound::Unbounded),
        CompareOp::Ge => (KeyBound::Incl(v), KeyBound::Unbounded),
        CompareOp::Ne => unreachable!("rejected by sargable_conjunct"),
    }
}

/// In-memory ORDER BY against the output schema.
fn sort_relation(rel: Relation, keys: &[nsql_sql::OrderKey]) -> Result<Relation> {
    let schema = rel.schema().clone();
    let mut idx: Vec<(usize, SortDir)> = Vec::new();
    for k in keys {
        let i = schema
            .try_resolve(None, &k.column.column)
            .or_else(|| schema.try_resolve(k.column.table.as_deref(), &k.column.column))
            .ok_or_else(|| {
                DbError::Type(nsql_types::TypeError::UnknownColumn(k.column.to_string()))
            })?;
        idx.push((i, k.dir));
    }
    let mut rows = rel.into_tuples();
    rows.sort_by(|a, b| {
        for &(i, dir) in &idx {
            let o = a.get(i).total_cmp(b.get(i));
            let o = if dir == SortDir::Desc { o.reverse() } else { o };
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    Relation::new(schema, rows).map_err(DbError::from)
}

// SortKey is pulled in for potential external sorting of large final
// results; the in-memory sort above suffices for result delivery.
#[allow(unused_imports)]
use SortKey as _SortKeyUnused;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use nsql_core::AggItem;
    use nsql_storage::Storage;
    use nsql_sql::parse_query;
    use nsql_types::Value;

    fn catalog() -> Catalog {
        let storage = Storage::with_defaults();
        let mut cat = Catalog::new(storage);
        let schema = Schema::new(vec![
            Column::new("K", ColumnType::Int),
            Column::new("V", ColumnType::Int),
        ]);
        let mut rel = Relation::empty(schema.clone());
        for (k, v) in [(3i64, 30), (1, 10), (2, 20), (1, 11)] {
            rel.push(Tuple::new(vec![Value::Int(k), Value::Int(v)])).unwrap();
        }
        cat.create_table("T", schema).unwrap();
        cat.insert(
            "T",
            rel.tuples().to_vec(),
        )
        .unwrap();
        cat
    }

    fn executor(cat: &Catalog, policy: JoinPolicy) -> PlanExecutor<&Catalog> {
        PlanExecutor::new(Exec::new(cat.storage().clone()), cat, policy)
    }

    #[test]
    fn distinct_projection_reports_full_sort_order() {
        let cat = catalog();
        let mut pe = executor(&cat, JoinPolicy::ForceMergeJoin);
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::scan("T")),
            items: vec![nsql_sql::SelectItem::column(ColumnRef::qualified("T", "K"))],
            distinct: true,
        };
        let out = pe.run_plan(&plan).unwrap();
        assert_eq!(out.sorted_by, vec![0]);
        assert_eq!(out.file.tuple_count(), 3, "deduplicated");
    }

    #[test]
    fn merge_join_output_is_sorted_on_left_keys() {
        let cat = catalog();
        let mut pe = executor(&cat, JoinPolicy::ForceMergeJoin);
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Scan { table: "T".into(), alias: Some("A".into()) }),
            right: Box::new(LogicalPlan::Scan { table: "T".into(), alias: Some("B".into()) }),
            kind: LogicalJoinKind::Inner,
            on: vec![JoinPred {
                left: ColumnRef::qualified("A", "K"),
                op: CompareOp::Eq,
                right: ColumnRef::qualified("B", "K"),
            }],
        };
        let out = pe.run_plan(&plan).unwrap();
        assert_eq!(out.sorted_by, vec![0]);
        // 1 matches 1,1 (4 combos: 2x2), 2 matches 2, 3 matches 3 → 2*2+1+1.
        assert_eq!(out.file.tuple_count(), 6);
    }

    #[test]
    fn aggregate_over_merge_join_skips_the_sort_pass() {
        let cat = catalog();
        let mut pe = executor(&cat, JoinPolicy::ForceMergeJoin);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::Scan { table: "T".into(), alias: Some("A".into()) }),
                right: Box::new(LogicalPlan::Scan { table: "T".into(), alias: Some("B".into()) }),
                kind: LogicalJoinKind::Inner,
                on: vec![JoinPred {
                    left: ColumnRef::qualified("A", "K"),
                    op: CompareOp::Eq,
                    right: ColumnRef::qualified("B", "K"),
                }],
            }),
            group_by: vec![ColumnRef::qualified("A", "K")],
            aggs: vec![AggItem {
                func: AggFunc::Count,
                arg: AggArg::Column(ColumnRef::qualified("B", "V")),
                alias: "CT".into(),
            }],
        };
        let out = pe.run_plan(&plan).unwrap();
        assert_eq!(out.file.tuple_count(), 3);
        let log = pe.log.join("\n");
        assert!(
            log.contains("input pre-sorted, no sort pass"),
            "GROUP BY over merge-join output must skip its sort:\n{log}"
        );
    }

    #[test]
    fn cost_based_prefers_nl_when_inner_is_buffer_resident() {
        let cat = catalog(); // T is 1 page — far below B-1
        let mut pe = executor(&cat, JoinPolicy::CostBased);
        let l = pe.run_plan(&LogicalPlan::Scan { table: "T".into(), alias: Some("A".into()) }).unwrap();
        let r = pe.run_plan(&LogicalPlan::Scan { table: "T".into(), alias: Some("B".into()) }).unwrap();
        let picked = pe.pick_method(&l, &r, &[0], &[0]);
        assert_eq!(picked, PhysicalJoin::NestedLoop);
    }

    #[test]
    fn forced_policies_pick_their_method() {
        let cat = catalog();
        let l_r = {
            let mut pe = executor(&cat, JoinPolicy::ForceMergeJoin);
            let l = pe.run_plan(&LogicalPlan::Scan { table: "T".into(), alias: Some("A".into()) }).unwrap();
            let r = pe.run_plan(&LogicalPlan::Scan { table: "T".into(), alias: Some("B".into()) }).unwrap();
            (l, r)
        };
        for (policy, want) in [
            (JoinPolicy::ForceNestedLoop, PhysicalJoin::NestedLoop),
            (JoinPolicy::ForceMergeJoin, PhysicalJoin::Merge),
            (JoinPolicy::ForceHashJoin, PhysicalJoin::Hash),
        ] {
            let pe = executor(&cat, policy);
            assert_eq!(pe.pick_method(&l_r.0, &l_r.1, &[0], &[0]), want, "{policy:?}");
        }
    }

    #[test]
    fn filter_over_outer_join_is_not_fused() {
        // The §5.2 distinction: a filter above a LEFT OUTER join must run
        // after padding, not as a join residual.
        let cat = catalog();
        let mut pe = executor(&cat, JoinPolicy::ForceMergeJoin);
        let join = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Scan { table: "T".into(), alias: Some("A".into()) }),
            right: Box::new(LogicalPlan::Scan { table: "T".into(), alias: Some("B".into()) }),
            kind: LogicalJoinKind::LeftOuter,
            on: vec![JoinPred {
                left: ColumnRef::qualified("A", "K"),
                op: CompareOp::Eq,
                right: ColumnRef::qualified("B", "K"),
            }],
        };
        // Predicate on the right side: padded rows (NULL B.V) must be
        // dropped by the filter — which only happens if it is NOT fused.
        let q = parse_query("SELECT A.K FROM A, B WHERE B.V > 100").unwrap();
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            pred: q.where_clause.unwrap(),
        };
        let out = pe.run_plan(&plan).unwrap();
        // No B.V exceeds 100, so the result must be empty — if the filter
        // were fused as an outer-join residual, every left row would
        // survive padded.
        assert_eq!(out.file.tuple_count(), 0);
    }
}
