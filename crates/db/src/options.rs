//! Query-evaluation options.

use nsql_core::UnnestOptions;

/// Physical join-method policy for transformed queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinPolicy {
    /// Always nested loops.
    ForceNestedLoop,
    /// Merge join wherever an equi-key exists, nested loops otherwise.
    ForceMergeJoin,
    /// Hash join wherever an equi-key exists, nested loops otherwise.
    /// A **modern extension** — System R and the paper had no hash join;
    /// kept for the E13 ablation.
    ForceHashJoin,
    /// Pick the cheaper method per join from actual page counts and the
    /// Section-7 cost formulas.
    #[default]
    CostBased,
}

impl JoinPolicy {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            JoinPolicy::ForceNestedLoop => "nested-loop",
            JoinPolicy::ForceMergeJoin => "merge-join",
            JoinPolicy::ForceHashJoin => "hash-join",
            JoinPolicy::CostBased => "cost-based",
        }
    }
}

/// What NEST-N-J's join expansion does to row multiplicity — the paper's
/// Section 4 duplicates problem made an explicit, documented choice instead
/// of a silent set-level test comparison.
///
/// Nested iteration (the semantic ground truth) emits each outer tuple at
/// most once per `IN` test, however many inner rows match. Kim's NEST-N-J
/// replaces the membership test with a join, so an outer tuple appears once
/// *per match*. The two agree as bags only when the merged inner column is
/// key-valued (at most one match per outer tuple); otherwise a choice must
/// be made, and both available choices are deviations:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicateSemantics {
    /// Kim's join form verbatim (the faithful historical reading): output
    /// multiplicity is join multiplicity. Bag-equal to nested iteration for
    /// key-valued inner columns; over-counts matches otherwise (only
    /// set-level agreement is promised — `Relation::same_set`).
    #[default]
    KimFaithful,
    /// The modern semijoin-style fix: deduplicate the final result of
    /// IN-merged queries (`TransformPlan::needs_distinct_for_semantics`).
    /// The output has DISTINCT (set) semantics — join-expansion duplicates
    /// disappear, but so do *legitimate* duplicate outer tuples, so this
    /// too matches nested iteration only up to sets.
    ForceDistinct,
}

/// How to evaluate a query.
#[derive(Debug, Clone, Default)]
pub enum Strategy {
    /// System R semantics: direct nested iteration (the paper's baseline
    /// and the semantic ground truth).
    NestedIteration,
    /// Transform to canonical form first (NEST-G driving NEST-N-J and
    /// NEST-JA2 / Kim's NEST-JA), then execute the flat query.
    #[default]
    Transform,
}

/// Full option set for [`crate::Database::query_with`].
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Transformation options (JA variant, duplicate preservation).
    pub unnest: UnnestOptions,
    /// Row-multiplicity semantics for NEST-N-J's join expansion (see
    /// [`DuplicateSemantics`]). `ForceDistinct` maps onto
    /// `unnest.preserve_duplicates` when the query is transformed; nested
    /// iteration ignores it (its multiplicities are already the ground
    /// truth).
    pub duplicates: DuplicateSemantics,
    /// Join-method policy for the transformed path.
    pub join_policy: JoinPolicy,
    /// Start from a cold buffer and zeroed I/O counters so the reported
    /// cost is comparable across runs (default true).
    pub cold_start: bool,
    /// Keep the temporary tables after the query (for inspection in the
    /// experiment binaries); they are dropped otherwise.
    pub keep_temps: bool,
    /// Worker threads for morsel-parallel execution. `0` (the default)
    /// resolves from `NSQL_THREADS`, falling back to the machine's available
    /// parallelism; `1` takes the exact serial code path. Parallel runs
    /// report the same per-query I/O totals as serial runs by construction.
    pub threads: usize,
    /// Collect observability data: lifecycle spans, per-operator metrics,
    /// and diagnostic events ([`crate::QueryOutcome::obs`]). Collection is
    /// pure side-state — it never changes the reported page-I/O totals,
    /// the hit/miss split, or the result rows (property-tested).
    pub observe: bool,
}

impl QueryOptions {
    /// The paper's baseline: nested iteration, cold buffer.
    pub fn nested_iteration() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::NestedIteration,
            cold_start: true,
            ..QueryOptions::default()
        }
    }

    /// The paper's headline configuration: NEST-JA2 + merge joins.
    pub fn transformed_merge() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::Transform,
            join_policy: JoinPolicy::ForceMergeJoin,
            cold_start: true,
            ..QueryOptions::default()
        }
    }

    /// Transformation with the cost-based method choice.
    pub fn transformed() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::Transform,
            join_policy: JoinPolicy::CostBased,
            cold_start: true,
            ..QueryOptions::default()
        }
    }
}
