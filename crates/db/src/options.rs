//! Query-evaluation options.

use nsql_core::UnnestOptions;
use std::path::PathBuf;

/// Physical join-method policy for transformed queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinPolicy {
    /// Always nested loops.
    ForceNestedLoop,
    /// Merge join wherever an equi-key exists, nested loops otherwise.
    ForceMergeJoin,
    /// Hash join wherever an equi-key exists, nested loops otherwise.
    /// A **modern extension** — System R and the paper had no hash join;
    /// kept for the E13 ablation.
    ForceHashJoin,
    /// Pick the cheaper method per join from actual page counts and the
    /// Section-7 cost formulas.
    #[default]
    CostBased,
}

impl JoinPolicy {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            JoinPolicy::ForceNestedLoop => "nested-loop",
            JoinPolicy::ForceMergeJoin => "merge-join",
            JoinPolicy::ForceHashJoin => "hash-join",
            JoinPolicy::CostBased => "cost-based",
        }
    }
}

/// Whether the executor may route restrictions and back-joins through
/// B+tree indexes ([`crate::Catalog::create_index`]). Index paths change
/// page-I/O counts, never results — the diff harness checks all three
/// settings against the naive oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexUse {
    /// Use an index path when the Section-7 extension says it is cheaper
    /// (`index_restrict_cost` / `index_nested_join_cost`).
    #[default]
    CostBased,
    /// Take an applicable index path even when costed as more expensive
    /// (exercises the index operators regardless of table shape).
    Prefer,
    /// Never touch an index; plans read as if no index existed.
    Never,
}

impl IndexUse {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            IndexUse::CostBased => "cost-based",
            IndexUse::Prefer => "prefer-index",
            IndexUse::Never => "no-index",
        }
    }
}

/// Which storage backend a [`crate::Database`] sits on. Page I/O is counted
/// above the backend seam, so figures and tables are byte-identical across
/// the two modes (checked by `scripts/verify.sh`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Durability {
    /// Pages live in a process-local map; nothing survives the process.
    /// The default — benchmarks model I/O, they do not need to perform it.
    #[default]
    Memory,
    /// Pages live in a checksummed page file with a write-ahead log under
    /// the given directory; commits survive crashes and restarts.
    File(PathBuf),
}

impl Durability {
    /// Resolve from `NSQL_DURABILITY`: unset/`memory` → [`Durability::Memory`];
    /// `file` → a fresh per-process subdirectory under `NSQL_DATA_DIR` (or
    /// the system temp dir); `file:<dir>` → exactly `<dir>`.
    pub fn from_env() -> Durability {
        match std::env::var("NSQL_DURABILITY") {
            Ok(v) if v.eq_ignore_ascii_case("file") => {
                let base = std::env::var_os("NSQL_DATA_DIR")
                    .map(PathBuf::from)
                    .unwrap_or_else(std::env::temp_dir);
                Durability::File(base)
            }
            Ok(v) => match v.strip_prefix("file:") {
                Some(dir) if !dir.is_empty() => Durability::File(PathBuf::from(dir)),
                _ => Durability::Memory,
            },
            Err(_) => Durability::Memory,
        }
    }
}

/// What NEST-N-J's join expansion does to row multiplicity — the paper's
/// Section 4 duplicates problem made an explicit, documented choice instead
/// of a silent set-level test comparison.
///
/// Nested iteration (the semantic ground truth) emits each outer tuple at
/// most once per `IN` test, however many inner rows match. Kim's NEST-N-J
/// replaces the membership test with a join, so an outer tuple appears once
/// *per match*. The two agree as bags only when the merged inner column is
/// key-valued (at most one match per outer tuple); otherwise a choice must
/// be made, and both available choices are deviations:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicateSemantics {
    /// Kim's join form verbatim (the faithful historical reading): output
    /// multiplicity is join multiplicity. Bag-equal to nested iteration for
    /// key-valued inner columns; over-counts matches otherwise (only
    /// set-level agreement is promised — `Relation::same_set`).
    #[default]
    KimFaithful,
    /// The modern semijoin-style fix: deduplicate the final result of
    /// IN-merged queries (`TransformPlan::needs_distinct_for_semantics`).
    /// The output has DISTINCT (set) semantics — join-expansion duplicates
    /// disappear, but so do *legitimate* duplicate outer tuples, so this
    /// too matches nested iteration only up to sets.
    ForceDistinct,
}

/// Which tuple-at-a-time representation the executor runs on.
///
/// Vectorized execution batches each page into column vectors and
/// evaluates predicates, join probes, and aggregate folds with batch
/// kernels; operators without a vectorized implementation (and blocks the
/// predicate compiler declines) fall back to the row path per operator.
/// Results, error values, page-I/O totals, and buffer hit/miss splits are
/// byte-identical across modes — only CPU time changes (property-tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Tuple-at-a-time interpretation (the historical baseline).
    Row,
    /// Columnar batch kernels with per-operator row-path fallback.
    Vector,
    /// Resolve from `NSQL_EXEC_MODE` (`vector`/`vectorized` → vectorized;
    /// anything else, or unset → row).
    #[default]
    Auto,
}

impl ExecMode {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Row => "row",
            ExecMode::Vector => "vector",
            ExecMode::Auto => "auto",
        }
    }

    /// Whether this mode (after `Auto` resolution) runs vectorized.
    pub fn vectorized(self) -> bool {
        match self {
            ExecMode::Row => false,
            ExecMode::Vector => true,
            ExecMode::Auto => match std::env::var("NSQL_EXEC_MODE") {
                Ok(v) => {
                    v.eq_ignore_ascii_case("vector") || v.eq_ignore_ascii_case("vectorized")
                }
                Err(_) => false,
            },
        }
    }
}

/// Cross-query result caching policy (see `nsql-cache` and DESIGN.md
/// "Result caching").
///
/// `On` serves only *exact* hits: same normalized computation, same
/// binding, same catalog generations. Exact hits recharge the recorded
/// page-access sequence, so results **and** counted I/O are byte-identical
/// with an uncached run (checked by `scripts/verify.sh`). `Rewrite`
/// additionally answers from materialized aggregate views when the
/// Cohen-style soundness check proves the rewrite safe; derived answers
/// rebuild the temp from cached tuples, so their I/O legitimately differs
/// from a cold run (results never do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Never consult or populate the cache.
    Off,
    /// Exact hits only — I/O-transparent.
    On,
    /// Exact hits plus sound aggregate-view rewrites.
    Rewrite,
    /// Resolve from `NSQL_CACHE` (`on`/`1` → [`CacheMode::On`],
    /// `rewrite` → [`CacheMode::Rewrite`]; anything else, or unset → off).
    #[default]
    Auto,
}

impl CacheMode {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::On => "on",
            CacheMode::Rewrite => "rewrite",
            CacheMode::Auto => "auto",
        }
    }

    /// `Auto` resolved against the environment; other modes unchanged.
    pub fn resolve(self) -> CacheMode {
        match self {
            CacheMode::Auto => match std::env::var("NSQL_CACHE") {
                Ok(v) if v.eq_ignore_ascii_case("on") || v == "1" => CacheMode::On,
                Ok(v) if v.eq_ignore_ascii_case("rewrite") => CacheMode::Rewrite,
                _ => CacheMode::Off,
            },
            other => other,
        }
    }

    /// Whether this mode (after `Auto` resolution) consults the cache.
    pub fn enabled(self) -> bool {
        !matches!(self.resolve(), CacheMode::Off)
    }

    /// Whether this mode (after `Auto` resolution) may answer via
    /// aggregate-view rewrite.
    pub fn rewrite(self) -> bool {
        matches!(self.resolve(), CacheMode::Rewrite)
    }
}

/// How to evaluate a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// System R semantics: direct nested iteration (the paper's baseline
    /// and the semantic ground truth).
    NestedIteration,
    /// Transform to canonical form first (NEST-G driving NEST-N-J and
    /// NEST-JA2 / Kim's NEST-JA), then execute the flat query.
    Transform,
    /// Batched correlated evaluation (Guravannavar & Sudarshan): sort and
    /// deduplicate the outer correlation bindings with the external sort,
    /// evaluate the inner block once per *distinct* binding, then replay
    /// the memoized answers over the outer rows in their original order.
    /// Results and error semantics are identical to nested iteration; the
    /// inner block runs `D` times instead of `N` times.
    Batched,
    /// Resolve from `NSQL_STRATEGY` (`nested-iteration`/`ni` → nested
    /// iteration, `batched` → batched; anything else, or unset →
    /// transform). The default, so the env knob steers default-option
    /// runs while explicitly pinned options stay untouched.
    #[default]
    Auto,
}

impl Strategy {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::NestedIteration => "nested-iteration",
            Strategy::Transform => "transform",
            Strategy::Batched => "batched",
            Strategy::Auto => "auto",
        }
    }

    /// `Auto` resolved against the environment; other strategies unchanged.
    pub fn resolve(self) -> Strategy {
        match self {
            Strategy::Auto => match std::env::var("NSQL_STRATEGY") {
                Ok(v) if v.eq_ignore_ascii_case("nested-iteration")
                    || v.eq_ignore_ascii_case("ni") =>
                {
                    Strategy::NestedIteration
                }
                Ok(v) if v.eq_ignore_ascii_case("batched") => Strategy::Batched,
                _ => Strategy::Transform,
            },
            other => other,
        }
    }
}

/// Full option set for [`crate::Database::query_with`].
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Transformation options (JA variant, duplicate preservation).
    pub unnest: UnnestOptions,
    /// Row-multiplicity semantics for NEST-N-J's join expansion (see
    /// [`DuplicateSemantics`]). `ForceDistinct` maps onto
    /// `unnest.preserve_duplicates` when the query is transformed; nested
    /// iteration ignores it (its multiplicities are already the ground
    /// truth).
    pub duplicates: DuplicateSemantics,
    /// Join-method policy for the transformed path.
    pub join_policy: JoinPolicy,
    /// Whether restriction predicates and back-joins may route through
    /// B+tree indexes (see [`IndexUse`]). Irrelevant when no index exists.
    pub index_use: IndexUse,
    /// Storage backend the *harness* should put the database on when it
    /// builds one for this run (see [`Durability`]). Per-query evaluation
    /// ignores it — a live database already sits on its backend; the bench
    /// workload and `Database::new` honor it (the latter via
    /// `NSQL_DURABILITY`).
    pub durability: Durability,
    /// Start from a cold buffer and zeroed I/O counters so the reported
    /// cost is comparable across runs (default true).
    pub cold_start: bool,
    /// Keep the temporary tables after the query (for inspection in the
    /// experiment binaries); they are dropped otherwise.
    pub keep_temps: bool,
    /// Worker threads for morsel-parallel execution. `0` (the default)
    /// resolves from `NSQL_THREADS`, falling back to the machine's available
    /// parallelism; `1` takes the exact serial code path. Parallel runs
    /// report the same per-query I/O totals as serial runs by construction.
    pub threads: usize,
    /// Collect observability data: lifecycle spans, per-operator metrics,
    /// and diagnostic events ([`crate::QueryOutcome::obs`]). Collection is
    /// pure side-state — it never changes the reported page-I/O totals,
    /// the hit/miss split, or the result rows (property-tested).
    pub observe: bool,
    /// Row-at-a-time vs columnar batch execution (see [`ExecMode`]).
    /// `Auto` (the default) resolves from `NSQL_EXEC_MODE`.
    pub exec_mode: ExecMode,
    /// Cross-query result caching (see [`CacheMode`]). `Auto` (the
    /// default) resolves from `NSQL_CACHE`.
    pub cache: CacheMode,
    /// Byte budget for nested iteration's per-query, per-distinct-binding
    /// result memo. `None` keeps the engine default (1 MiB); the budget is
    /// accounted with the same size estimate as the cross-query cache.
    pub memo_budget: Option<usize>,
    /// Slow-query threshold in milliseconds: statements whose wall time
    /// reaches it are appended (with their rendered EXPLAIN) to the
    /// statistics registry's slow-query log. `Some(0)` logs everything;
    /// `None` (the default) resolves from `NSQL_SLOW_QUERY_MS`, and when
    /// that is unset too the log stays off.
    pub slow_query_ms: Option<u64>,
}

impl QueryOptions {
    /// The effective slow-query threshold in **microseconds** (the unit
    /// statement timings are recorded in), after `NSQL_SLOW_QUERY_MS`
    /// resolution; `None` disables the slow-query log.
    pub fn slow_query_threshold_us(&self) -> Option<u64> {
        let ms = match self.slow_query_ms {
            Some(ms) => Some(ms),
            None => std::env::var("NSQL_SLOW_QUERY_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok()),
        };
        ms.map(|ms| ms.saturating_mul(1000))
    }

    /// The paper's baseline: nested iteration, cold buffer.
    pub fn nested_iteration() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::NestedIteration,
            cold_start: true,
            ..QueryOptions::default()
        }
    }

    /// The paper's headline configuration: NEST-JA2 + merge joins.
    pub fn transformed_merge() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::Transform,
            join_policy: JoinPolicy::ForceMergeJoin,
            cold_start: true,
            ..QueryOptions::default()
        }
    }

    /// Transformation with the cost-based method choice.
    pub fn transformed() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::Transform,
            join_policy: JoinPolicy::CostBased,
            cold_start: true,
            ..QueryOptions::default()
        }
    }

    /// Batched correlated evaluation, cold buffer.
    pub fn batched() -> QueryOptions {
        QueryOptions {
            strategy: Strategy::Batched,
            cold_start: true,
            ..QueryOptions::default()
        }
    }
}
