//! `EXPLAIN` / `EXPLAIN ANALYZE` reports.
//!
//! An [`ExplainReport`] places the *transform decision* (which unnesting
//! algorithm fired and why, via the Figure-2 query tree and the NEST-G
//! trace) next to the *Section-7 predicted costs* — all four NEST-JA2
//! method combinations plus the nested-iteration baseline — and, under
//! `ANALYZE`, the *measured* per-operator actuals (rows, pages, buffer
//! hits, wall time, morsel distribution) and lifecycle spans.
//!
//! Predicted costs use measured temporary sizes when the query actually
//! ran (`ANALYZE`); plain `EXPLAIN` falls back to crude upper bounds from
//! catalog page counts (`Pt2 ≤ Pi`, `Pt3 ≤ Pj`), mirroring what an
//! optimizer without statistics would assume.

use crate::options::{QueryOptions, Strategy};
use crate::{Database, Result};
use nsql_analyzer::resolve::level_column_refs;
use nsql_analyzer::{query_tree, NestingType};
use nsql_core::cost::{
    batched_cost, ja2_cost, nested_iteration_cost_j, transformed_merge_join_cost,
    BatchedParams, Ja2Params, JoinMethod, StrategyCosts, StrategyKind,
};
use nsql_obs::{Json, OpSnapshot, SpanNode};
use nsql_sql::{InRhs, Operand, Predicate, QueryBlock};
use nsql_storage::IoStats;
use nsql_types::Schema;

/// Size of one materialized temporary, reported by the plan executor.
#[derive(Debug, Clone)]
pub struct TempStat {
    /// Temporary table name (e.g. `TEMP1`).
    pub name: String,
    /// Tuple count.
    pub tuples: usize,
    /// Page count.
    pub pages: usize,
}

/// Observability data collected during one observed query execution.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Completed lifecycle spans (parse → analyze → transform → execute),
    /// each with wall time and page-I/O delta.
    pub spans: Vec<SpanNode>,
    /// Per-operator metrics, in operator-creation order.
    pub ops: Vec<OpSnapshot>,
    /// Diagnostic events routed through the sink instead of stdout.
    pub events: Vec<String>,
}

impl ObsReport {
    /// JSON form: `{spans: [..], operators: [..], events: [..]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("spans", Json::Arr(self.spans.iter().map(SpanNode::to_json).collect())),
            ("operators", Json::Arr(self.ops.iter().map(OpSnapshot::to_json).collect())),
            ("events", Json::Arr(self.events.iter().map(|e| Json::str(e)).collect())),
        ])
    }
}

/// Section-7 cost of NEST-JA2 under one of the four method combinations.
#[derive(Debug, Clone, Copy)]
pub struct PredictedCost {
    /// Join method at the temporary-creation join (step 2).
    pub temp_method: JoinMethod,
    /// Join method at the final join (step 3).
    pub final_method: JoinMethod,
    /// Step 1 cost (outer projection into `Rt2`).
    pub outer_projection: f64,
    /// Step 2 cost (`Rt3`, join, GROUP BY into `Rt`).
    pub temp_creation: f64,
    /// Step 3 cost (final join of `Rt` with `Ri`).
    pub final_join: f64,
}

impl PredictedCost {
    /// Total predicted page I/Os.
    pub fn total(&self) -> f64 {
        self.outer_projection + self.temp_creation + self.final_join
    }

    /// One-line rendering for EXPLAIN output.
    pub fn render(&self) -> String {
        format!(
            "NEST-JA2 [temp={}, final={}]: {:.1} + {:.1} + {:.1} = {:.1}",
            self.temp_method.name(),
            self.final_method.name(),
            self.outer_projection,
            self.temp_creation,
            self.final_join,
            self.total()
        )
    }

    /// JSON form with the step breakdown.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("temp_method", Json::str(self.temp_method.name())),
            ("final_method", Json::str(self.final_method.name())),
            ("outer_projection", Json::num(self.outer_projection)),
            ("temp_creation", Json::num(self.temp_creation)),
            ("final_join", Json::num(self.final_join)),
            ("total", Json::num(self.total())),
        ])
    }
}

/// A full `EXPLAIN` / `EXPLAIN ANALYZE` report.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The query, printed back in canonical dialect form.
    pub sql: String,
    /// Whether the query was executed (`EXPLAIN ANALYZE`).
    pub analyze: bool,
    /// Rendered Figure-2 query tree with per-block classification.
    pub tree: String,
    /// The transformation algorithm that fired (e.g. `NEST-JA2`).
    pub chosen: String,
    /// Strategy, transformation trace, canonical form, and physical-join
    /// log lines, in decision order.
    pub strategy: Vec<String>,
    /// Section-7 predicted costs for the four NEST-JA2 method
    /// combinations. Empty unless the query tree contains type-JA nesting.
    pub predicted: Vec<PredictedCost>,
    /// Worst-case nested-iteration cost of the same query (the paper's
    /// baseline), when the tree has a correlated (J/JA) block.
    pub predicted_nested_iteration: Option<f64>,
    /// Predicted cost of each executable strategy — nested iteration,
    /// transform, batched — plus the planner's pick, for every nested
    /// query (correlated or not; `None` only for flat queries, which have
    /// no strategy choice). Rendered whatever strategy the options pin,
    /// so EXPLAIN always shows what the cost model *would* choose.
    pub strategy_costs: Option<StrategyCosts>,
    /// Measured page I/O (ANALYZE only).
    pub io: Option<IoStats>,
    /// Result cardinality (ANALYZE only).
    pub rows: Option<usize>,
    /// Spans, per-operator metrics, and events (ANALYZE only).
    pub obs: Option<ObsReport>,
}

impl ExplainReport {
    /// Render the report as indented text lines — the body of the
    /// relation `EXPLAIN` returns and the CLI's output.
    pub fn render_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "{}: {}",
            if self.analyze { "EXPLAIN ANALYZE" } else { "EXPLAIN" },
            self.sql
        ));
        out.push("query tree:".to_string());
        for l in self.tree.lines() {
            out.push(format!("  {l}"));
        }
        out.push(format!("transform decision: {}", self.chosen));
        for l in &self.strategy {
            out.push(format!("  · {l}"));
        }
        if !self.predicted.is_empty() || self.predicted_nested_iteration.is_some() {
            out.push("predicted cost (Section 7 model, page I/Os):".to_string());
            if let Some(ni) = self.predicted_nested_iteration {
                out.push(format!("  nested iteration (worst case): {ni:.1}"));
            }
            let best = self
                .predicted
                .iter()
                .map(PredictedCost::total)
                .fold(f64::INFINITY, f64::min);
            for p in &self.predicted {
                let marker = if p.total() == best { "  * " } else { "    " };
                out.push(format!("{marker}{}", p.render()));
            }
        }
        if let Some(sc) = &self.strategy_costs {
            out.push("strategy costs (three-way, page I/Os):".to_string());
            let pick = sc.pick();
            for kind in
                [StrategyKind::NestedIteration, StrategyKind::Transform, StrategyKind::Batched]
            {
                let marker = if kind == pick { "  * " } else { "    " };
                out.push(format!("{marker}{}: {:.1}", kind.name(), sc.of(kind)));
            }
            out.push(format!("planner pick: {}", pick.name()));
        }
        if self.analyze {
            out.push("measured:".to_string());
            if let (Some(io), Some(rows)) = (&self.io, self.rows) {
                out.push(format!("  rows: {rows}, io: {io}"));
            }
            if let Some(obs) = &self.obs {
                if !obs.ops.is_empty() {
                    out.push("  operators:".to_string());
                    for op in &obs.ops {
                        out.push(format!("    {}", op.render()));
                    }
                }
                if !obs.spans.is_empty() {
                    out.push("  spans:".to_string());
                    let mut lines = Vec::new();
                    for s in &obs.spans {
                        s.render_into(0, &mut lines);
                    }
                    for l in lines {
                        out.push(format!("    {l}"));
                    }
                }
                if !obs.events.is_empty() {
                    out.push("  events:".to_string());
                    for e in &obs.events {
                        out.push(format!("    {e}"));
                    }
                }
            }
        }
        out
    }

    /// Machine-readable form for `scripts/bench.sh` and the smoke check.
    pub fn to_json(&self) -> Json {
        let io = match &self.io {
            Some(io) => Json::obj([
                ("reads", Json::num(io.reads as f64)),
                ("writes", Json::num(io.writes as f64)),
                ("total", Json::num(io.total() as f64)),
            ]),
            None => Json::Null,
        };
        let obs = self.obs.as_ref().map(ObsReport::to_json).unwrap_or(Json::Null);
        Json::obj([
            ("sql", Json::str(&self.sql)),
            ("analyze", Json::Bool(self.analyze)),
            ("chosen", Json::str(&self.chosen)),
            ("tree", Json::str(&self.tree)),
            (
                "strategy",
                Json::Arr(self.strategy.iter().map(|s| Json::str(s)).collect()),
            ),
            (
                "predicted",
                Json::Arr(self.predicted.iter().map(PredictedCost::to_json).collect()),
            ),
            (
                "predicted_nested_iteration",
                match self.predicted_nested_iteration {
                    Some(c) => Json::num(c),
                    None => Json::Null,
                },
            ),
            (
                "strategy_costs",
                match &self.strategy_costs {
                    Some(sc) => Json::obj([
                        ("nested_iteration", Json::num(sc.of(StrategyKind::NestedIteration))),
                        ("transform", Json::num(sc.of(StrategyKind::Transform))),
                        ("batched", Json::num(sc.of(StrategyKind::Batched))),
                        ("pick", Json::str(sc.pick().name())),
                    ]),
                    None => Json::Null,
                },
            ),
            ("io", io),
            (
                "rows",
                match self.rows {
                    Some(r) => Json::num(r as f64),
                    None => Json::Null,
                },
            ),
            ("obs", obs),
        ])
    }
}

impl Database {
    /// Build an `EXPLAIN` (`analyze = false`) or `EXPLAIN ANALYZE`
    /// (`analyze = true`) report for one SELECT under `opts`.
    pub fn explain_query(
        &self,
        sql: &str,
        analyze: bool,
        opts: &QueryOptions,
    ) -> Result<ExplainReport> {
        let q = nsql_sql::parse_query(sql)?;
        self.explain_block(&q, analyze, opts)
    }

    /// [`explain_query`](Database::explain_query) over a parsed block
    /// (the `EXPLAIN` statement path).
    pub fn explain_block(
        &self,
        q: &QueryBlock,
        analyze: bool,
        opts: &QueryOptions,
    ) -> Result<ExplainReport> {
        let tree = query_tree(self.catalog(), q)?;
        let is_ja = tree.contains(NestingType::TypeJA);
        let correlated = is_ja || tree.contains(NestingType::TypeJ);

        // Run (ANALYZE) or transform-only (plain EXPLAIN).
        let (strategy, temps, io, rows, obs) = if analyze {
            let run_opts = QueryOptions { observe: true, ..opts.clone() };
            let out = self.run_query(q, &run_opts)?;
            (out.explain, out.temps, Some(out.io), Some(out.relation.len()), out.obs)
        } else {
            // Plain EXPLAIN renders the same per-strategy header lines an
            // ANALYZE run would: strategy, exec mode, cache mode. The
            // nested-iteration path used to print the bare strategy line
            // only — keep the two paths in lockstep.
            let strategy = match opts.strategy.resolve() {
                Strategy::Auto => unreachable!("Strategy::resolve never returns Auto"),
                Strategy::NestedIteration => {
                    let mut lines = vec!["strategy: nested iteration (System R)".to_string()];
                    lines.extend(mode_lines(opts));
                    lines
                }
                Strategy::Batched => {
                    // Batched evaluation is a row strategy — no vectorized
                    // header line, matching the ANALYZE path.
                    let mut lines = vec![
                        "strategy: batched correlated evaluation \
                         (sort-deduplicated outer bindings)"
                            .to_string(),
                    ];
                    let cache = opts.cache.resolve();
                    if cache.enabled() {
                        lines.push(format!("cache: mode {}", cache.name()));
                    }
                    lines
                }
                Strategy::Transform => {
                    let plan = nsql_core::transform_query(self.catalog(), q, &opts.unnest)?;
                    let mut lines = vec![format!(
                        "strategy: transform ({} temp table{}), join policy: {}",
                        plan.temp_count(),
                        if plan.temp_count() == 1 { "" } else { "s" },
                        opts.join_policy.name()
                    )];
                    lines.extend(mode_lines(opts));
                    lines.extend(plan.trace.clone());
                    lines.push(format!(
                        "canonical: {}",
                        nsql_sql::print_query(&plan.canonical)
                    ));
                    lines
                }
            };
            (strategy, Vec::new(), None, None, None)
        };

        let chosen = match opts.strategy.resolve() {
            Strategy::Auto => unreachable!("Strategy::resolve never returns Auto"),
            Strategy::NestedIteration => "nested iteration (System R baseline)".to_string(),
            Strategy::Batched => "batched correlated evaluation".to_string(),
            Strategy::Transform => chosen_from_trace(&strategy),
        };

        let params = if is_ja { self.ja2_params_for(q, &temps) } else { None };
        let predicted = params
            .map(|p| {
                let methods = [JoinMethod::NestedLoop, JoinMethod::MergeJoin];
                let mut v = Vec::with_capacity(4);
                for temp_method in methods {
                    for final_method in methods {
                        let c = ja2_cost(&p, temp_method, final_method);
                        v.push(PredictedCost {
                            temp_method,
                            final_method,
                            outer_projection: c.outer_projection,
                            temp_creation: c.temp_creation,
                            final_join: c.final_join,
                        });
                    }
                }
                v
            })
            .unwrap_or_default();
        let predicted_nested_iteration = if correlated {
            self.ja2_params_for(q, &temps)
                .map(|p| nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni))
        } else {
            None
        };
        // Every nested query gets the three-way comparison — uncorrelated
        // blocks too (there batched's binding set collapses to one empty
        // binding, pricing the evaluate-once plan). Flat queries have no
        // strategy choice and render no block.
        let strategy_costs = if first_subquery(q).is_some() {
            self.strategy_costs_for(q, &temps, is_ja)
        } else {
            None
        };

        Ok(ExplainReport {
            sql: nsql_sql::print_query(q),
            analyze,
            tree: tree.render(),
            chosen,
            strategy,
            predicted,
            predicted_nested_iteration,
            strategy_costs,
            io,
            rows,
            obs,
        })
    }

    /// Section-7 parameters for the (first) nested block of `q`. Measured
    /// temporary sizes are used when available (`ANALYZE`); otherwise the
    /// crude statistics-free upper bounds `Pt2 ≤ Pi`, `Pt3 ≤ Pj`.
    fn ja2_params_for(&self, q: &QueryBlock, temps: &[TempStat]) -> Option<Ja2Params> {
        let outer = self.catalog().table(&q.from.first()?.table)?;
        let inner_block = first_subquery(q)?;
        let inner = self.catalog().table(&inner_block.from.first()?.table)?;
        let pi = outer.page_count() as f64;
        let pj = inner.page_count() as f64;
        let fi_ni = outer.tuple_count() as f64;
        let b = self.storage().buffer_pages() as f64;
        // The three NEST-JA2 temporaries in creation order map onto the
        // paper's Rt2, Rt3, Rt; Rt4 is never materialized here (the GROUP
        // BY is fused onto the join), so it is bounded by its inputs.
        let mut sorted: Vec<&TempStat> = temps.iter().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let (pt2, nt2, pt3, pt) = match sorted.as_slice() {
            [t1, t2, t3, ..] => (
                t1.pages as f64,
                t1.tuples as f64,
                t2.pages as f64,
                t3.pages as f64,
            ),
            _ => (pi, fi_ni, pj, pi),
        };
        let pt4 = pt3.max(pt);
        Some(Ja2Params { pi, pj, pt2, nt2, pt3, pt4, pt, b, fi_ni, ri_sorted: false })
    }

    /// Predicted cost of all three executable strategies on `q`'s (first)
    /// correlated block. Transform is the cheapest NEST-JA2 method
    /// combination for type-JA shapes and the canonical merge join
    /// otherwise; batched uses the catalog's distinct-count statistics for
    /// `d` (falling back to the qualifying-tuple count — i.e. "no better
    /// than nested iteration's rescans" — when the catalog was restored
    /// without statistics).
    fn strategy_costs_for(
        &self,
        q: &QueryBlock,
        temps: &[TempStat],
        is_ja: bool,
    ) -> Option<StrategyCosts> {
        let p = self.ja2_params_for(q, temps)?;
        let nested_iteration = nested_iteration_cost_j(p.pi, p.pj, p.b, p.fi_ni);
        let transform = if is_ja {
            let methods = [JoinMethod::NestedLoop, JoinMethod::MergeJoin];
            let mut best = f64::INFINITY;
            for m_temp in methods {
                for m_final in methods {
                    best = best.min(ja2_cost(&p, m_temp, m_final).total());
                }
            }
            best
        } else {
            transformed_merge_join_cost(p.pi, p.pj, p.b)
        };

        // Batched parameters: the correlation columns are the inner
        // block's free references; their catalog distinct counts bound the
        // number of inner evaluations `d` (a product for multi-column
        // correlations, capped by the qualifying-tuple count).
        let outer_ref = q.from.first()?;
        let outer = self.catalog().table(&outer_ref.table)?;
        let inner_block = first_subquery(q)?;
        let mut inner_local = Schema::default();
        for tref in &inner_block.from {
            if let Some(f) = self.catalog().table(&tref.table) {
                inner_local = inner_local.join(&f.schema().requalify(tref.effective_name()));
            }
        }
        let mut corr_cols: Vec<usize> = Vec::new();
        let mut free_refs = false;
        for c in level_column_refs(inner_block) {
            if inner_local.try_resolve(c.table.as_deref(), &c.column).is_some() {
                continue; // bound by the inner block's own FROM
            }
            free_refs = true;
            let idx = outer
                .schema()
                .try_resolve(c.table.as_deref(), &c.column)
                .or_else(|| outer.schema().try_resolve(None, &c.column));
            if let Some(i) = idx {
                if !corr_cols.contains(&i) {
                    corr_cols.push(i);
                }
            }
        }
        let (d, p_bind) = if !free_refs {
            // Uncorrelated inner block: every outer row shares the single
            // empty binding, so batched evaluates the inner exactly once
            // and the binding temporary is one page of nothing.
            (1.0, 1.0)
        } else {
            let mut d = 1.0;
            let mut have_stats = !corr_cols.is_empty();
            for &i in &corr_cols {
                match self.catalog().distinct_count(&outer_ref.table, i) {
                    Some(n) => d *= n.max(1) as f64,
                    None => have_stats = false,
                }
            }
            let d = if have_stats { d.min(p.fi_ni) } else { p.fi_ni };
            // The binding temporary is the correlation columns of the
            // qualifying outer tuples — the outer's pages scaled to the
            // narrower rows, never below one page.
            let width = corr_cols.len().max(1) as f64;
            let arity = outer.schema().arity().max(1) as f64;
            (d, (p.pi * width / arity).ceil().max(1.0))
        };
        let batched = batched_cost(&BatchedParams { pi: p.pi, p_bind, d, pj: p.pj, b: p.b });
        Some(StrategyCosts { nested_iteration, transform, batched })
    }
}

/// Execution-mode header lines shared by plain `EXPLAIN` across both
/// strategies: vectorization and cache policy, after `Auto` resolution.
fn mode_lines(opts: &QueryOptions) -> Vec<String> {
    let mut lines = Vec::new();
    if opts.exec_mode.vectorized() {
        lines.push(
            "exec mode: vectorized (batch kernels, per-operator row fallback)".to_string(),
        );
    }
    let cache = opts.cache.resolve();
    if cache.enabled() {
        lines.push(format!("cache: mode {}", cache.name()));
    }
    lines
}

/// Name the algorithm that fired, from the NEST-G trace.
fn chosen_from_trace(lines: &[String]) -> String {
    let has = |pat: &str| lines.iter().any(|l| l.contains(pat));
    if has("NEST-JA2") {
        "NEST-JA2 (Ganski-Wong)".to_string()
    } else if has("Kim") {
        "NEST-JA (Kim original, known COUNT bug)".to_string()
    } else if has("type-J nesting") {
        "NEST-N-J (type-J)".to_string()
    } else if has("type-N nesting") {
        "NEST-N-J (type-N)".to_string()
    } else if has("type-A") {
        "type-A constant folding".to_string()
    } else {
        "none (query already flat)".to_string()
    }
}

/// First subquery block reachable from `q`'s WHERE clause.
fn first_subquery(q: &QueryBlock) -> Option<&QueryBlock> {
    fn in_pred(p: &Predicate) -> Option<&QueryBlock> {
        match p {
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().find_map(in_pred),
            Predicate::Not(inner) => in_pred(inner),
            Predicate::Compare { left, right, .. } => {
                [left, right].into_iter().find_map(|o| match o {
                    Operand::Subquery(sub) => Some(&**sub),
                    _ => None,
                })
            }
            Predicate::In { rhs: InRhs::Subquery(sub), .. } => Some(sub),
            Predicate::Exists { query, .. } => Some(query),
            Predicate::Quantified { query, .. } => Some(query),
            _ => None,
        }
    }
    q.where_clause.as_ref().and_then(in_pred)
}
