#!/usr/bin/env bash
# Full offline verification gate. Everything here must pass with no
# network access: the workspace has zero crates-io dependencies.
#
#   ./scripts/verify.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-run scratch space. NSQL_DATA_DIR is the contract documented in
# nsql-testkit: every file-backed test and every NSQL_DURABILITY=file run
# puts its page/WAL files under a private subdirectory of this root, so one
# `rm -rf` on exit leaves nothing behind even if a test aborts mid-crash.
tmp1=$(mktemp -d)
NSQL_DATA_DIR=$(mktemp -d)
export NSQL_DATA_DIR
trap 'rm -rf "$tmp1" "$NSQL_DATA_DIR"' EXIT

echo "==> cargo build --release (tier-1, step 1)"
cargo build --release --offline

echo "==> cargo test -q (tier-1, step 2)"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo test -q --workspace under NSQL_THREADS=1 and =4"
NSQL_THREADS=1 cargo test -q --workspace --offline >/dev/null
NSQL_THREADS=4 cargo test -q --workspace --offline >/dev/null

echo "==> figure/table binaries are byte-identical under NSQL_THREADS=1 vs =4"
# The binaries pin themselves serial; NSQL_THREADS must not leak through.
for bin in figure1 figure2 section7 ablation bugs extensions sweep; do
    NSQL_THREADS=1 cargo run --release --offline -q -p nsql-bench --bin "$bin" \
        > "$tmp1/$bin.t1.out"
    NSQL_THREADS=4 cargo run --release --offline -q -p nsql-bench --bin "$bin" \
        > "$tmp1/$bin.t4.out"
    diff -q "$tmp1/$bin.t1.out" "$tmp1/$bin.t4.out" \
        || { echo "FAIL: $bin output differs across thread settings"; exit 1; }
done

echo "==> figure/table binaries are byte-identical memory vs file-backed"
# Page I/O is counted above the DiskManager seam, so swapping the in-memory
# store for the durable page file must not move a single counter: every
# figure and table is reproduced byte-for-byte on the WAL-backed store.
for bin in figure1 figure2 section7 ablation bugs extensions sweep; do
    NSQL_DURABILITY=file NSQL_THREADS=1 \
        cargo run --release --offline -q -p nsql-bench --bin "$bin" \
        > "$tmp1/$bin.file.out"
    diff -q "$tmp1/$bin.t1.out" "$tmp1/$bin.file.out" \
        || { echo "FAIL: $bin output differs between storage backends"; exit 1; }
done

echo "==> figure/table binaries are byte-identical row vs vectorized mode"
# Vectorized execution is wall-clock only: every counted page I/O, every
# row, every cost table must be byte-for-byte the row-mode output. The
# `bugs` binary is exempt — it prints EXPLAIN, which intentionally gains
# an "exec mode: vectorized" line (that is the one permitted difference).
for bin in figure1 figure2 section7 ablation extensions sweep; do
    NSQL_EXEC_MODE=vector NSQL_THREADS=1 \
        cargo run --release --offline -q -p nsql-bench --bin "$bin" \
        > "$tmp1/$bin.vec.out"
    diff -q "$tmp1/$bin.t1.out" "$tmp1/$bin.vec.out" \
        || { echo "FAIL: $bin output differs between exec modes"; exit 1; }
done

echo "==> figure/table binaries are byte-identical under NSQL_STRATEGY=batched"
# NSQL_STRATEGY only steers Strategy::Auto (default-option runs); every
# figure/table binary pins its strategy explicitly, so the env knob must
# not move a single byte of any published number — including the `bugs`
# binary's EXPLAIN output, whose strategy lines are part of the figure.
for bin in figure1 figure2 section7 ablation bugs extensions sweep; do
    NSQL_STRATEGY=batched NSQL_THREADS=1 \
        cargo run --release --offline -q -p nsql-bench --bin "$bin" \
        > "$tmp1/$bin.strat.out"
    diff -q "$tmp1/$bin.t1.out" "$tmp1/$bin.strat.out" \
        || { echo "FAIL: $bin output differs under NSQL_STRATEGY=batched"; exit 1; }
done

echo "==> figure/table binaries are byte-identical cache-on vs cache-off"
# Exact-hit caching recharges the recorded page-event sequence instead of
# skipping it, so enabling the cache must not move a single counted I/O or
# row anywhere in the figures. The `bugs` binary is exempt for the same
# reason as the exec-mode loop: its EXPLAIN output intentionally gains
# "cache: ..." lines.
for bin in figure1 figure2 section7 ablation extensions sweep; do
    NSQL_CACHE=on NSQL_THREADS=1 \
        cargo run --release --offline -q -p nsql-bench --bin "$bin" \
        > "$tmp1/$bin.cache.out"
    diff -q "$tmp1/$bin.t1.out" "$tmp1/$bin.cache.out" \
        || { echo "FAIL: $bin output differs with the result cache enabled"; exit 1; }
done

echo "==> figure/table binaries are byte-identical under NSQL_STATS=off"
# The statistics registry is always-on by default, so every baseline above
# was recorded with it collecting. Disabling it must not move a single
# counted I/O or row anywhere in the figures: collection is pure
# side-state off the counted page path, and this diff pins both directions
# of that claim at once (on-baseline vs off-rerun).
for bin in figure1 figure2 section7 ablation bugs extensions sweep; do
    NSQL_STATS=off NSQL_THREADS=1 \
        cargo run --release --offline -q -p nsql-bench --bin "$bin" \
        > "$tmp1/$bin.stats.out"
    diff -q "$tmp1/$bin.t1.out" "$tmp1/$bin.stats.out" \
        || { echo "FAIL: $bin output differs under NSQL_STATS=off"; exit 1; }
done

echo "==> vectorized-equivalence property on both storage backends"
cargo test -q --offline -p nsql-bench --test vec_prop
NSQL_DURABILITY=file cargo test -q --offline -p nsql-bench --test vec_prop >/dev/null

echo "==> recovery smoke (crash mid-commit at every write site, oracle-diff)"
cargo run --release --offline -q -p nsql-bench --bin recovery_smoke

echo "==> explain_smoke (EXPLAIN ANALYZE per transform type, exporter schema)"
cargo run --release --offline -q -p nsql-bench --bin explain_smoke

echo "==> stats_smoke (system views, JSON export, I/O-free statistics reads)"
cargo run --release --offline -q -p nsql-bench --bin stats_smoke

echo "==> query-processing library crates are stdout-silent"
# Diagnostics in the processing crates route through the nsql-obs event
# sink, so EXPLAIN ANALYZE and the JSON exporter see them. Harness crates
# (testkit, bench) and binaries are exempt: stdout is their deliverable.
if grep -rnE '(println|eprintln|print|eprint|dbg)!' \
    crates/types/src crates/obs/src crates/sql/src crates/storage/src \
    crates/index/src crates/exec-par/src crates/engine/src crates/vec/src \
    crates/analyzer/src crates/core/src crates/db/src crates/oracle/src \
    crates/cache/src \
    src/lib.rs \
    --include='*.rs' | grep -vE ':[0-9]+:\s*(//|///|//!)'; then
    echo "FAIL: stdout/stderr printing in a query-processing library crate"
    exit 1
fi

echo "==> differential oracle check (release, 200 random cases per pipeline)"
NSQL_DIFF_CASES=200 cargo run --release --offline -q -p nsql-bench --bin diffcheck

echo "==> diff_prop smoke at a pinned seed (debug path, shrinker wired in)"
NSQL_TEST_SEED=0xd1ffc4ec NSQL_TEST_CASES=60 cargo test -q --offline --test diff_prop

echo "==> batched_prop smoke (thread/backend I/O invariance + metamorphic mutations)"
NSQL_TEST_SEED=0xba7c4ed0 NSQL_TEST_CASES=60 cargo test -q --offline --test batched_prop

echo "==> stats_prop smoke (stats-on/off rows + four-counter I/O invariance)"
NSQL_TEST_SEED=0x57a75b10 NSQL_TEST_CASES=40 cargo test -q --offline --test stats_prop

echo "==> cargo bench --no-run (bench targets compile offline)"
cargo bench -p nsql-bench --no-run --offline

echo "==> testkit is warnings-clean across all targets"
RUSTFLAGS="-D warnings" cargo check -p nsql-testkit --all-targets --offline

echo "==> hot-path crates carry no redundant clones (clippy)"
# nsql-core is included for the rule engine and cost model: rule firings
# clone plan fragments, and a redundant clone there multiplies per query.
cargo clippy -p nsql-engine -p nsql-storage -p nsql-index -p nsql-vec -p nsql-cache \
    -p nsql-core \
    --all-targets --offline -- -D clippy::redundant_clone

echo "==> bench smoke (3 samples per bench, results discarded)"
NSQL_BENCH_SAMPLES=3 \
    cargo bench -p nsql-bench --offline --bench nested_vs_transformed >/dev/null
NSQL_BENCH_SAMPLES=3 \
    cargo bench -p nsql-bench --offline --bench ja2_variants >/dev/null
NSQL_BENCH_SAMPLES=3 \
    cargo bench -p nsql-bench --offline --bench par_sweep >/dev/null
NSQL_BENCH_SAMPLES=1 \
    cargo bench -p nsql-bench --offline --bench vec_sweep >/dev/null
NSQL_BENCH_SAMPLES=1 \
    cargo bench -p nsql-bench --offline --bench cache_warm >/dev/null
NSQL_BENCH_SAMPLES=1 \
    cargo bench -p nsql-bench --offline --bench strategy_sweep >/dev/null
NSQL_BENCH_SAMPLES=1 \
    cargo bench -p nsql-bench --offline --bench stats_overhead >/dev/null

echo "verify: OK"
