#!/usr/bin/env bash
# Full offline verification gate. Everything here must pass with no
# network access: the workspace has zero crates-io dependencies.
#
#   ./scripts/verify.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (tier-1, step 1)"
cargo build --release --offline

echo "==> cargo test -q (tier-1, step 2)"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo bench --no-run (bench targets compile offline)"
cargo bench -p nsql-bench --no-run --offline

echo "==> testkit is warnings-clean across all targets"
RUSTFLAGS="-D warnings" cargo check -p nsql-testkit --all-targets --offline

echo "==> hot-path crates carry no redundant clones (clippy)"
cargo clippy -p nsql-engine -p nsql-storage --all-targets --offline -- \
    -D clippy::redundant_clone

echo "==> bench smoke (3 samples per bench, results discarded)"
NSQL_BENCH_SAMPLES=3 \
    cargo bench -p nsql-bench --offline --bench nested_vs_transformed >/dev/null
NSQL_BENCH_SAMPLES=3 \
    cargo bench -p nsql-bench --offline --bench ja2_variants >/dev/null

echo "verify: OK"
