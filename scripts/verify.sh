#!/usr/bin/env bash
# Full offline verification gate. Everything here must pass with no
# network access: the workspace has zero crates-io dependencies.
#
#   ./scripts/verify.sh
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (tier-1, step 1)"
cargo build --release --offline

echo "==> cargo test -q (tier-1, step 2)"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo bench --no-run (bench targets compile offline)"
cargo bench -p nsql-bench --no-run --offline

echo "==> testkit is warnings-clean across all targets"
RUSTFLAGS="-D warnings" cargo check -p nsql-testkit --all-targets --offline

echo "verify: OK"
