#!/usr/bin/env bash
# Wall-clock bench runner: runs both `harness = false` bench targets with
# machine-readable JSON output and appends the results, tagged with a
# label, to BENCH_pr2.json at the repo root.
#
#   ./scripts/bench.sh [label]
#
# The committed BENCH_pr2.json holds one line per benchmark per run,
# tagged `"label":"baseline"` (recorded before the zero-copy hot-path
# rewrite) and `"label":"optimized"` (after). Compare medians per
# (group, bench) pair; see DESIGN.md "Execution model and the
# I/O-accounting invariant" for why wall clock may move while counted
# page I/Os must not.
set -euo pipefail
cd "$(dirname "$0")/.."

label=${1:-current}
out=BENCH_pr2.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for bench in nested_vs_transformed ja2_variants; do
    echo "==> cargo bench -p nsql-bench --bench $bench"
    NSQL_BENCH_JSON="$tmp" cargo bench -p nsql-bench --bench "$bench" --offline
done

# Tag each JSON line with the run label and append to the committed file.
sed "s/^{/{\"label\":\"$label\",/" "$tmp" >> "$out"
echo "appended $(wc -l < "$tmp") results to $out (label: $label)"
