#!/usr/bin/env bash
# Wall-clock bench runner with machine-readable JSON output.
#
#   ./scripts/bench.sh [label]           # PR2 benches -> BENCH_pr2.json
#   ./scripts/bench.sh sweep [label]     # thread sweep -> BENCH_pr3.json
#   ./scripts/bench.sh obs [label]       # per-operator metrics -> BENCH_pr5.json
#   ./scripts/bench.sh vec [label]       # exec-mode sweep -> BENCH_pr7.json
#   ./scripts/bench.sh cache [label]     # result-cache sweep -> BENCH_pr8.json
#   ./scripts/bench.sh strategy [label]  # three-way strategy sweep -> BENCH_pr9.json
#   ./scripts/bench.sh stats [label]     # stats-registry overhead -> BENCH_pr10.json
#
# The committed BENCH_pr2.json holds one line per benchmark per run,
# tagged `"label":"baseline"` (recorded before the zero-copy hot-path
# rewrite) and `"label":"optimized"` (after). BENCH_pr3.json holds the
# morsel-parallel thread sweep (1/2/4/8 workers per cell); counted page
# I/Os are identical across a sweep by construction, so only the medians
# move. Compare medians per (group, bench) pair; see DESIGN.md
# "Threading model" and "Execution model and the I/O-accounting
# invariant". BENCH_pr5.json holds one line per EXPLAIN ANALYZE query:
# transform decision, predicted Section-7 costs, and the measured
# per-operator metrics array (rows, page I/O, build/probe/wall timings);
# the page-I/O counters are deterministic, the nanosecond timings are not.
# BENCH_pr7.json holds the exec-mode sweep (row vs vectorized at 1 and 4
# worker threads per cell); counted page I/Os are byte-identical between
# the modes by construction (see DESIGN.md "Vectorized execution"), so
# the medians isolate kernel speedup. Acceptance reads the threads=1
# medians of the vec-ni-type-J and vec-hash-join groups. BENCH_pr8.json
# holds the result-cache sweep (cache=off vs primed cache=on per cell);
# counted page I/Os are byte-identical between the cells by construction
# (an exact hit recharges the recorded page events; see DESIGN.md "Result
# caching"), so the medians isolate the evaluation work a hit avoids.
# Acceptance reads the cache-ni-type-J and cache-ni-type-JA-count groups.
# BENCH_pr9.json holds the three-way strategy sweep (nested iteration vs
# the NEST-* transform vs batched correlated evaluation per cell) over a
# duplicate-heavy and a unique-correlation workload; acceptance reads the
# strategy-dup-type-J-notin group, where the query sits outside the
# transformable class (the transform cell times refusal + nested-iteration
# fallback) and batched must beat both incumbents. BENCH_pr10.json holds
# the statistics-registry overhead sweep (stats=off vs stats=on per cell);
# counted page I/Os are byte-identical between the cells by construction
# (collection is pure side-state; see DESIGN.md "System statistics"), so
# the medians isolate the registry's CPU cost. Acceptance reads the
# stats-ni-type-J group and asks the stats=on median to sit within 2% of
# stats=off.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=bench
if [ "${1:-}" = "sweep" ]; then
    mode=sweep
    shift
elif [ "${1:-}" = "obs" ]; then
    mode=obs
    shift
elif [ "${1:-}" = "vec" ]; then
    mode=vec
    shift
elif [ "${1:-}" = "cache" ]; then
    mode=cache
    shift
elif [ "${1:-}" = "strategy" ]; then
    mode=strategy
    shift
elif [ "${1:-}" = "stats" ]; then
    mode=stats
    shift
fi
label=${1:-current}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

if [ "$mode" = "sweep" ]; then
    out=BENCH_pr3.json
    echo "==> cargo bench -p nsql-bench --bench par_sweep  (host: $(nproc) CPU(s))"
    NSQL_BENCH_JSON="$tmp" cargo bench -p nsql-bench --bench par_sweep --offline
elif [ "$mode" = "obs" ]; then
    out=BENCH_pr5.json
    echo "==> cargo run -p nsql-bench --bin explain_smoke  (per-operator metrics)"
    NSQL_OBS_JSON="$tmp" cargo run --release --offline -q -p nsql-bench --bin explain_smoke
elif [ "$mode" = "vec" ]; then
    out=BENCH_pr7.json
    echo "==> cargo bench -p nsql-bench --bench vec_sweep  (host: $(nproc) CPU(s))"
    NSQL_BENCH_JSON="$tmp" cargo bench -p nsql-bench --bench vec_sweep --offline
elif [ "$mode" = "cache" ]; then
    out=BENCH_pr8.json
    echo "==> cargo bench -p nsql-bench --bench cache_warm  (host: $(nproc) CPU(s))"
    NSQL_BENCH_JSON="$tmp" cargo bench -p nsql-bench --bench cache_warm --offline
elif [ "$mode" = "strategy" ]; then
    out=BENCH_pr9.json
    echo "==> cargo bench -p nsql-bench --bench strategy_sweep  (host: $(nproc) CPU(s))"
    NSQL_BENCH_JSON="$tmp" cargo bench -p nsql-bench --bench strategy_sweep --offline
elif [ "$mode" = "stats" ]; then
    out=BENCH_pr10.json
    echo "==> cargo bench -p nsql-bench --bench stats_overhead  (host: $(nproc) CPU(s))"
    NSQL_BENCH_JSON="$tmp" cargo bench -p nsql-bench --bench stats_overhead --offline
else
    out=BENCH_pr2.json
    for bench in nested_vs_transformed ja2_variants; do
        echo "==> cargo bench -p nsql-bench --bench $bench"
        NSQL_BENCH_JSON="$tmp" cargo bench -p nsql-bench --bench "$bench" --offline
    done
fi

# Tag each JSON line with the run label (and, for sweeps, the host CPU
# count — medians at >1 thread only improve when the host has >1 CPU) and
# append to the committed file.
if [ "$mode" = "sweep" ] || [ "$mode" = "vec" ] || [ "$mode" = "cache" ] || [ "$mode" = "strategy" ] || [ "$mode" = "stats" ]; then
    sed "s/^{/{\"label\":\"$label\",\"ncpu\":$(nproc),/" "$tmp" >> "$out"
else
    sed "s/^{/{\"label\":\"$label\",/" "$tmp" >> "$out"
fi
echo "appended $(wc -l < "$tmp") results to $out (label: $label)"
