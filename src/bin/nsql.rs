//! `nsql` — an interactive shell over the nested-query-opt database.
//!
//! ```sh
//! cargo run --bin nsql
//! ```
//!
//! Type SQL terminated by `;` — including `EXPLAIN SELECT …` (transform
//! decision and predicted Section-7 costs) and `EXPLAIN ANALYZE SELECT …`
//! (adds measured per-operator metrics and lifecycle spans). Dot-commands:
//!
//! ```text
//! .help                 this text
//! .tables               list tables
//! .strategy ni|cost|merge|nl|hash|batched
//!                       evaluation strategy for subsequent SELECTs
//! .variant ja2|kim|noproj|late
//!                       type-JA algorithm (kim/noproj/late are the paper's
//!                       buggy baselines, for demonstration)
//! .explain SELECT …     show the transformation pipeline without running
//! .tree SELECT …        show the Figure-2 query tree
//! .demo                 load Kiessling's PARTS/SUPPLY example data
//! .stats [json]         cumulative statistics (tables, statements, cache);
//!                       also queryable as the nsql_stat_* system views
//! .slow [<ms>|off]      show the slow-query log / set the threshold
//! .quit
//! ```

use nested_query_opt::core::{JaVariant, UnnestOptions};
use nested_query_opt::db::{Database, JoinPolicy, QueryOptions, Strategy};
use std::io::{BufRead, Write};

struct Shell {
    db: Database,
    opts: QueryOptions,
}

impl Shell {
    fn new() -> Shell {
        Shell { db: Database::new(), opts: QueryOptions::transformed() }
    }

    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        match line.split_whitespace().next() {
            Some(".quit") | Some(".exit") => return false,
            Some(".help") => print_help(),
            Some(".tables") => {
                for t in self.db.catalog().table_names() {
                    let file = self.db.catalog().table(t).expect("listed");
                    println!(
                        "  {t}  {}  ({} rows, {} pages)",
                        file.schema(),
                        file.tuple_count(),
                        file.page_count()
                    );
                }
            }
            Some(".strategy") => {
                match line.split_whitespace().nth(1) {
                    Some("ni") => {
                        self.opts.strategy = Strategy::NestedIteration;
                    }
                    Some("cost") => {
                        self.opts.strategy = Strategy::Transform;
                        self.opts.join_policy = JoinPolicy::CostBased;
                    }
                    Some("merge") => {
                        self.opts.strategy = Strategy::Transform;
                        self.opts.join_policy = JoinPolicy::ForceMergeJoin;
                    }
                    Some("nl") => {
                        self.opts.strategy = Strategy::Transform;
                        self.opts.join_policy = JoinPolicy::ForceNestedLoop;
                    }
                    Some("hash") => {
                        self.opts.strategy = Strategy::Transform;
                        self.opts.join_policy = JoinPolicy::ForceHashJoin;
                    }
                    Some("batched") => {
                        self.opts.strategy = Strategy::Batched;
                    }
                    _ => println!("usage: .strategy ni|cost|merge|nl|hash|batched"),
                }
                println!("ok");
            }
            Some(".variant") => {
                let variant = match line.split_whitespace().nth(1) {
                    Some("ja2") => Some(JaVariant::Ja2),
                    Some("kim") => Some(JaVariant::KimOriginal),
                    Some("noproj") => Some(JaVariant::Ja2NoProjection),
                    Some("late") => Some(JaVariant::Ja2LateRestriction),
                    _ => {
                        println!("usage: .variant ja2|kim|noproj|late");
                        None
                    }
                };
                if let Some(v) = variant {
                    self.opts.unnest = UnnestOptions { ja_variant: v, ..self.opts.unnest.clone() };
                    println!("ok");
                }
            }
            Some(".explain") => {
                let sql = line.trim_start_matches(".explain").trim();
                match self.db.plan(sql) {
                    Ok(plan) => {
                        for t in &plan.trace {
                            println!("  · {t}");
                        }
                        println!("{plan}");
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            Some(".tree") => {
                let sql = line.trim_start_matches(".tree").trim();
                match self.db.query_tree(sql) {
                    Ok(t) => print!("{}", t.render()),
                    Err(e) => println!("error: {e}"),
                }
            }
            Some(".stats") => match line.split_whitespace().nth(1) {
                Some("json") => println!("{}", self.db.stats().snapshot().to_json()),
                Some(other) => println!("unknown argument {other}; usage: .stats [json]"),
                None => self.print_stats(),
            },
            Some(".slow") => match line.split_whitespace().nth(1) {
                Some("off") => {
                    self.opts.slow_query_ms = None;
                    println!("ok (slow-query log follows NSQL_SLOW_QUERY_MS)");
                }
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) => {
                        self.opts.slow_query_ms = Some(ms);
                        println!("ok (logging statements >= {ms} ms)");
                    }
                    Err(_) => println!("usage: .slow <ms>|off"),
                },
                None => {
                    for q in self.db.stats().slow_queries() {
                        println!("#{} {} us [{}] {}", q.seq, q.micros, q.strategy, q.sql);
                        for l in &q.explain {
                            println!("    {l}");
                        }
                    }
                }
            },
            Some(".demo") => {
                match self.db.execute_script(
                    "CREATE TABLE PARTS (PNUM INT, QOH INT);
                     CREATE TABLE SUPPLY (PNUM INT, QUAN INT, SHIPDATE DATE);
                     INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
                     INSERT INTO SUPPLY VALUES
                       (3, 4, 7-3-79), (3, 2, 10-1-78), (10, 1, 6-8-78),
                       (10, 2, 8-10-81), (8, 5, 5-7-83);",
                ) {
                    Ok(_) => println!("loaded PARTS and SUPPLY (Kiessling's example). Try:\n  \
                        SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY \
                        WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80);"),
                    Err(e) => println!("error: {e}"),
                }
            }
            Some(cmd) if cmd.starts_with('.') => println!("unknown command {cmd}; try .help"),
            _ => self.run_sql(line),
        }
        true
    }

    fn print_stats(&self) {
        let snap = self.db.stats().snapshot();
        println!("tables:");
        for t in &snap.tables {
            println!(
                "  {}  scans {}, index probes {}, tuples read {}, written {}",
                t.table, t.scans, t.index_probes, t.tuples_read, t.tuples_written
            );
        }
        println!("statements:");
        for s in &snap.statements {
            println!(
                "  {} call(s), p50 {} us, p99 {} us, {} read(s), {} write(s) [{}] {}",
                s.calls, s.p50_us, s.p99_us, s.reads, s.writes, s.strategy, s.query
            );
        }
        println!("{}", snap.cache.render());
        println!(
            "slow queries logged: {} (threshold: {})",
            snap.slow.len(),
            match self.opts.slow_query_threshold_us() {
                Some(us) => format!("{} ms", us / 1000),
                None => "off".to_string(),
            }
        );
    }

    fn run_sql(&mut self, sql: &str) {
        let upper = sql.trim_start().to_ascii_uppercase();
        if upper.starts_with("SELECT") {
            match self.db.query_with(sql, &self.opts) {
                Ok(out) => {
                    println!("{}", out.relation);
                    println!("({})", out.io);
                }
                Err(e) => println!("error: {e}"),
            }
        } else if upper.starts_with("EXPLAIN") {
            // Handled here rather than via execute_script so the report
            // honours the shell's current .strategy/.variant options.
            let rest = sql.trim_start()["EXPLAIN".len()..].trim_start();
            let (analyze, query) = match rest.get(.."ANALYZE".len()) {
                Some(kw) if kw.eq_ignore_ascii_case("ANALYZE") => {
                    (true, rest["ANALYZE".len()..].trim_start())
                }
                _ => (false, rest),
            };
            match self.db.explain_query(query, analyze, &self.opts) {
                Ok(report) => {
                    for l in report.render_lines() {
                        println!("{l}");
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        } else {
            match self.db.execute_script(sql) {
                Ok(Some(rel)) => println!("{rel}"),
                Ok(None) => println!("ok"),
                Err(e) => println!("error: {e}"),
            }
        }
    }
}

fn print_help() {
    println!(
        "SQL (terminated by ';'): CREATE TABLE, INSERT INTO … VALUES, SELECT,\n\
         EXPLAIN SELECT … (transform decision + predicted Section-7 costs),\n\
         EXPLAIN ANALYZE SELECT … (adds measured per-operator metrics + spans)\n\
         .tables | .demo | .strategy ni|cost|merge|nl|hash|batched | .variant ja2|kim|noproj|late\n\
         .explain SELECT … | .tree SELECT … | .quit\n\
         .stats [json]   cumulative statistics (also queryable: SELECT … FROM nsql_stat_statements)\n\
         .slow [<ms>|off]  show the slow-query log / set the threshold"
    );
}

fn main() {
    println!(
        "nsql — nested-query optimization shell (Ganski & Wong, SIGMOD 1987)\n\
         type .help for commands, .demo to load the paper's example data\n"
    );
    let stdin = std::io::stdin();
    let mut shell = Shell::new();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("nsql> ");
        } else {
            print!("  ..> ");
        }
        std::io::stdout().flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.is_empty()) {
            if !trimmed.is_empty() && !shell.dispatch(trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let stmt = std::mem::take(&mut buffer);
            if !shell.dispatch(&stmt) {
                break;
            }
        }
    }
}
