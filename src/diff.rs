//! Differential oracle harness (the "diffcheck" fuzzer).
//!
//! [`gen_case`] draws a random small database plus a random nested query
//! from a *schema-aware* grammar (every column reference resolves, every
//! comparison is type-compatible, NULLs and duplicate rows are injected
//! deliberately); [`check_case`] evaluates the query with the naive
//! tuple-at-a-time oracle (`nsql-oracle`) and with every engine pipeline —
//! nested iteration at 1 and 4 threads, batched correlated evaluation at 1
//! and 4 threads (plus a cache-on variant), the NEST-G transformation under
//! each join policy, and the duplicate-collapsing `ForceDistinct` variant —
//! and compares results at exactly the strength the paper promises:
//!
//! * nested iteration must be **bag-equal** to the oracle, always, at every
//!   thread count; batched correlated evaluation is held to the same
//!   full-strength contract (its replay phase consults exactly the
//!   conjunct/binding pairs nested iteration would, in the same order);
//! * transformed plans must be bag-equal except where a documented
//!   divergence license applies (tracked by [`nsql_oracle::Notes`], written
//!   up in DESIGN.md "Oracle semantics"): the `ALL`-over-empty-or-NULL
//!   MIN/MAX rewrite, COUNT-family aggregates under NULL correlation keys,
//!   and NEST-N-J's join-expansion duplicates (set equality there, full
//!   skip when an aggregate would be inflated);
//! * a scalar-subquery cardinality error in the oracle must reproduce as
//!   the *same* error in nested iteration (transforms are unlicensed);
//! * a query outside the transformable class (`NOT IN`, `= ALL`, …) may be
//!   refused by the transformation — refusal is not divergence.
//!
//! Every case is replayable through the testkit seed machinery
//! (`NSQL_TEST_SEED`) and shrinks greedily: table rows are removed first,
//! then the query is structurally simplified.

use nsql_db::{
    CacheMode, Database, DuplicateSemantics, ExecMode, IndexUse, JoinPolicy, QueryOptions,
    Strategy,
};
use nsql_engine::EngineError;
use nsql_oracle::{Notes, Oracle, OracleError};
use nsql_sql::{
    AggArg, AggFunc, ColumnRef, CompareOp, InRhs, Operand, Predicate, Quantifier, QueryBlock,
    ScalarExpr, SelectItem, TableRef,
};
use nsql_testkit::{Rng, Shrink};
use nsql_types::{Column, ColumnType, Relation, Schema, Tuple, Value};
use std::fmt;

// ---------------------------------------------------------------- the case

/// One differential test case: a set of named in-memory tables plus a
/// (possibly nested) query over them.
#[derive(Clone, PartialEq)]
pub struct DiffCase {
    /// Named relations; loaded both into the oracle and into a fresh
    /// [`Database`].
    pub tables: Vec<(String, Relation)>,
    /// The query under test. All column references are alias-qualified and
    /// resolvable by construction.
    pub query: QueryBlock,
}

impl fmt::Debug for DiffCase {
    /// Render as runnable SQL plus the table contents — what a failure
    /// report should show a human.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query: {}", nsql_sql::print_query(&self.query))?;
        for (name, rel) in &self.tables {
            writeln!(f, "{name}:\n{rel}")?;
        }
        Ok(())
    }
}

impl Shrink for DiffCase {
    /// Row removal first (the biggest simplification), then the structural
    /// query shrinks inherited from the testkit AST shrinkers. Candidates
    /// whose query no longer resolves simply pass validation with an error
    /// on every side and are rejected by the shrinker as non-failing.
    fn shrink(&self) -> Vec<DiffCase> {
        let mut out = Vec::new();
        for (ti, (_, rel)) in self.tables.iter().enumerate() {
            for ri in 0..rel.len() {
                let mut c = self.clone();
                let mut tuples = rel.tuples().to_vec();
                tuples.remove(ri);
                c.tables[ti].1 = Relation::new(rel.schema().clone(), tuples)
                    .expect("same schema, same arity");
                out.push(c);
            }
        }
        for q in self.query.shrink() {
            out.push(DiffCase { tables: self.tables.clone(), query: q });
        }
        out
    }
}

// ----------------------------------------------------------- the generator

/// Type class a comparison may range over; the generator never compares
/// across classes (that would only test the type checker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Num,
    Str,
}

fn class_of(ty: ColumnType) -> Option<Class> {
    match ty {
        ColumnType::Int | ColumnType::Float => Some(Class::Num),
        ColumnType::Str => Some(Class::Str),
        _ => None,
    }
}

/// A column visible in some enclosing scope, with the alias that reaches it.
#[derive(Debug, Clone)]
struct ScopeCol {
    alias: String,
    name: String,
    ty: ColumnType,
}

impl ScopeCol {
    fn cref(&self) -> ColumnRef {
        ColumnRef::qualified(&self.alias, &self.name)
    }

    fn operand(&self) -> Operand {
        Operand::Column(self.cref())
    }

    fn class(&self) -> Class {
        class_of(self.ty).expect("generator only emits Int/Float/Str columns")
    }
}

const STR_DOMAIN: [&str; 5] = ["a", "b", "c", "d", "e"];

fn gen_value(rng: &mut Rng, ty: ColumnType) -> Value {
    if rng.gen_bool(0.12) {
        return Value::Null;
    }
    match ty {
        ColumnType::Int => Value::Int(rng.gen_range(-6i64..7)),
        // Dyadic rationals: exactly representable, so duplicates and
        // grouping collisions actually happen in the float domain too.
        ColumnType::Float => Value::Float(rng.gen_range(-24i64..25) as f64 / 8.0),
        ColumnType::Str => Value::Str((*rng.choose(&STR_DOMAIN)).to_string()),
        other => unreachable!("generator does not emit {other:?} columns"),
    }
}

/// A relation with deliberate NULL and duplicate-row biasing: tiny value
/// domains force key collisions, ~12% of values are NULL, and a quarter of
/// the rows are copies of earlier rows (the Section 4 duplicates problem).
fn gen_relation(rng: &mut Rng, schema: Schema) -> Relation {
    let n = rng.gen_range(0usize..8);
    let mut rows: Vec<Tuple> = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && rng.gen_bool(0.25) {
            let j = rng.gen_range(0..i);
            rows.push(rows[j].clone());
        } else {
            rows.push(Tuple::new(
                schema.columns().iter().map(|c| gen_value(rng, c.ty)).collect(),
            ));
        }
    }
    Relation::new(schema, rows).expect("arity by construction")
}

/// What a generated block must SELECT.
#[derive(Debug, Clone, Copy)]
enum BlockMode {
    /// Top-level query: plain columns, a global aggregate, or GROUP BY.
    Top,
    /// Inner block of `IN` / `EXISTS` / quantified predicates: exactly one
    /// column of the given class, never DISTINCT.
    OneCol(Class),
    /// Inner block of an aggregate (scalar) comparison: one aggregate item.
    OneAgg,
}

struct QueryGen<'a> {
    tables: &'a [(String, Relation)],
    next_alias: usize,
}

impl<'a> QueryGen<'a> {
    fn table_has_str(&self, idx: usize) -> bool {
        self.tables[idx].1.schema().columns().iter().any(|c| c.ty == ColumnType::Str)
    }

    fn any_table_has_str(&self) -> bool {
        (0..self.tables.len()).any(|i| self.table_has_str(i))
    }

    /// Pick a column of `class` (if given) from `cols`; `cols` always holds
    /// Int columns, so `Class::Num` never fails.
    fn pick_col<'c>(&self, rng: &mut Rng, cols: &'c [ScopeCol], class: Option<Class>) -> &'c ScopeCol {
        let candidates: Vec<&ScopeCol> = match class {
            None => cols.iter().collect(),
            Some(c) => cols.iter().filter(|s| s.class() == c).collect(),
        };
        *rng.choose(&candidates)
    }

    /// A literal in the column class, occasionally NULL (3VL pressure).
    fn lit(&self, rng: &mut Rng, class: Class) -> Value {
        if rng.gen_bool(0.06) {
            return Value::Null;
        }
        match class {
            Class::Num => {
                if rng.gen_bool(0.5) {
                    gen_value(rng, ColumnType::Int)
                } else {
                    gen_value(rng, ColumnType::Float)
                }
            }
            Class::Str => gen_value(rng, ColumnType::Str),
        }
    }

    fn any_op(&self, rng: &mut Rng) -> CompareOp {
        *rng.choose(&[
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ])
    }

    /// Class for a subquery comparison: `Str` only when both the outer
    /// operand side and some table can supply one.
    fn subquery_class(&self, rng: &mut Rng, locals: &[ScopeCol]) -> Class {
        let str_possible =
            self.any_table_has_str() && locals.iter().any(|c| c.class() == Class::Str);
        if str_possible && rng.gen_bool(0.3) {
            Class::Str
        } else {
            Class::Num
        }
    }

    /// One aggregate SELECT item over the local columns.
    fn agg_item(&self, rng: &mut Rng, locals: &[ScopeCol]) -> SelectItem {
        let expr = match rng.gen_range(0u32..6) {
            0 => ScalarExpr::Aggregate(AggFunc::Count, AggArg::Star),
            1 => ScalarExpr::Aggregate(
                AggFunc::Count,
                AggArg::Column(self.pick_col(rng, locals, None).cref()),
            ),
            2 => ScalarExpr::Aggregate(
                AggFunc::Sum,
                AggArg::Column(self.pick_col(rng, locals, Some(Class::Num)).cref()),
            ),
            3 => ScalarExpr::Aggregate(
                AggFunc::Avg,
                AggArg::Column(self.pick_col(rng, locals, Some(Class::Num)).cref()),
            ),
            4 => ScalarExpr::Aggregate(
                AggFunc::Max,
                AggArg::Column(self.pick_col(rng, locals, None).cref()),
            ),
            _ => ScalarExpr::Aggregate(
                AggFunc::Min,
                AggArg::Column(self.pick_col(rng, locals, None).cref()),
            ),
        };
        SelectItem::new(expr)
    }

    /// A subquery-free conjunct over the local columns.
    fn simple_conjunct(&mut self, rng: &mut Rng, locals: &[ScopeCol]) -> Predicate {
        let roll = rng.gen_range(0u32..100);
        if roll < 45 {
            // column ⟨op⟩ literal
            let col = self.pick_col(rng, locals, None);
            let lit = self.lit(rng, col.class());
            Predicate::Compare {
                left: col.operand(),
                op: self.any_op(rng),
                right: Operand::Literal(lit),
            }
        } else if roll < 60 {
            // column ⟨op⟩ column (same class; may be a cross-table join pred)
            let left = self.pick_col(rng, locals, None);
            let right = self.pick_col(rng, locals, Some(left.class()));
            Predicate::col_cmp(left.cref(), self.any_op(rng), right.cref())
        } else if roll < 70 {
            Predicate::IsNull {
                operand: self.pick_col(rng, locals, None).operand(),
                negated: rng.gen_bool(0.5),
            }
        } else if roll < 85 {
            // column [NOT] IN (literal list)
            let col = self.pick_col(rng, locals, None);
            let n = rng.gen_range(1usize..4);
            let list = (0..n).map(|_| self.lit(rng, col.class())).collect();
            Predicate::In {
                operand: col.operand(),
                negated: rng.gen_bool(0.3),
                rhs: InRhs::List(list),
            }
        } else {
            // simple disjunction of two comparisons
            let a = {
                let col = self.pick_col(rng, locals, None);
                let lit = self.lit(rng, col.class());
                Predicate::Compare {
                    left: col.operand(),
                    op: self.any_op(rng),
                    right: Operand::Literal(lit),
                }
            };
            let b = {
                let col = self.pick_col(rng, locals, None);
                let lit = self.lit(rng, col.class());
                Predicate::Compare {
                    left: col.operand(),
                    op: self.any_op(rng),
                    right: Operand::Literal(lit),
                }
            };
            Predicate::Or(vec![a, b])
        }
    }

    /// A nested-predicate conjunct: IN / EXISTS / quantified / aggregate
    /// comparison / scalar column subquery — Section 2's full inventory.
    fn subquery_conjunct(
        &mut self,
        rng: &mut Rng,
        locals: &[ScopeCol],
        outer: &[ScopeCol],
        depth: usize,
    ) -> Predicate {
        let scope: Vec<ScopeCol> = outer.iter().chain(locals.iter()).cloned().collect();
        let roll = rng.gen_range(0u32..100);
        if roll < 35 {
            let class = self.subquery_class(rng, locals);
            let col = self.pick_col(rng, locals, Some(class));
            let operand = col.operand();
            let inner = self.block(rng, &scope, depth - 1, BlockMode::OneCol(class));
            Predicate::In {
                operand,
                negated: rng.gen_bool(0.12),
                rhs: InRhs::Subquery(Box::new(inner)),
            }
        } else if roll < 50 {
            Predicate::Exists {
                negated: rng.gen_bool(0.4),
                query: Box::new(self.block(rng, &scope, depth - 1, BlockMode::OneCol(Class::Num))),
            }
        } else if roll < 70 {
            let class = self.subquery_class(rng, locals);
            let col = self.pick_col(rng, locals, Some(class));
            let left = col.operand();
            let op = self.any_op(rng);
            let quantifier = *rng.choose(&[Quantifier::Any, Quantifier::All]);
            Predicate::Quantified {
                left,
                op,
                quantifier,
                query: Box::new(self.block(rng, &scope, depth - 1, BlockMode::OneCol(class))),
            }
        } else if roll < 95 {
            // numeric column ⟨op⟩ (SELECT AGG(…) …) — types A and JA
            let col = self.pick_col(rng, locals, Some(Class::Num)).operand();
            let op = self.any_op(rng);
            let sub =
                Operand::Subquery(Box::new(self.block(rng, &scope, depth - 1, BlockMode::OneAgg)));
            if rng.gen_bool(0.25) {
                Predicate::Compare { left: sub, op, right: col }
            } else {
                Predicate::Compare { left: col, op, right: sub }
            }
        } else {
            // scalar non-aggregate subquery: errors when the inner block
            // yields 2+ rows — the cardinality-agreement part of the oracle
            let class = self.subquery_class(rng, locals);
            let col = self.pick_col(rng, locals, Some(class)).operand();
            let op = self.any_op(rng);
            let sub = Operand::Subquery(Box::new(self.block(
                rng,
                &scope,
                depth - 1,
                BlockMode::OneCol(class),
            )));
            Predicate::Compare { left: col, op, right: sub }
        }
    }

    /// An equality-shaped correlation conjunct tying a local column to an
    /// enclosing scope (any depth — grandparent correlation included).
    fn correlation(&mut self, rng: &mut Rng, locals: &[ScopeCol], outer: &[ScopeCol]) -> Predicate {
        let local = self.pick_col(rng, locals, None);
        let matching: Vec<&ScopeCol> =
            outer.iter().filter(|c| c.class() == local.class()).collect();
        let (local, outer_col) = if matching.is_empty() {
            // Both scopes always have Int columns.
            (
                self.pick_col(rng, locals, Some(Class::Num)).clone(),
                self.pick_col(rng, outer, Some(Class::Num)).clone(),
            )
        } else {
            (local.clone(), (*rng.choose(&matching)).clone())
        };
        let op = if rng.gen_bool(0.8) { CompareOp::Eq } else { self.any_op(rng) };
        if rng.gen_bool(0.5) {
            Predicate::col_cmp(local.cref(), op, outer_col.cref())
        } else {
            Predicate::col_cmp(outer_col.cref(), op.flip(), local.cref())
        }
    }

    fn block(
        &mut self,
        rng: &mut Rng,
        outer: &[ScopeCol],
        depth: usize,
        mode: BlockMode,
    ) -> QueryBlock {
        // FROM: pick tables; a OneCol(Str) block must see a Str column.
        let n_from = match mode {
            BlockMode::Top => rng.gen_range(1usize..3),
            _ => {
                if rng.gen_bool(0.15) {
                    2
                } else {
                    1
                }
            }
        };
        let mut chosen: Vec<usize> =
            (0..n_from).map(|_| rng.gen_range(0..self.tables.len())).collect();
        if matches!(mode, BlockMode::OneCol(Class::Str))
            && !chosen.iter().any(|&i| self.table_has_str(i))
        {
            let with_str: Vec<usize> =
                (0..self.tables.len()).filter(|&i| self.table_has_str(i)).collect();
            chosen[0] = *rng.choose(&with_str);
        }

        let mut from = Vec::new();
        let mut locals: Vec<ScopeCol> = Vec::new();
        for &ti in &chosen {
            let alias = format!("A{}", self.next_alias);
            self.next_alias += 1;
            let (name, rel) = &self.tables[ti];
            from.push(TableRef::aliased(name.clone(), &alias));
            for c in rel.schema().columns() {
                locals.push(ScopeCol { alias: alias.clone(), name: c.name.clone(), ty: c.ty });
            }
        }

        // WHERE: simple + nested conjuncts, plus (for inner blocks) a
        // correlation predicate most of the time.
        let mut conjuncts = Vec::new();
        let n_conj = match mode {
            BlockMode::Top => {
                if rng.gen_bool(0.15) {
                    0
                } else {
                    rng.gen_range(1usize..4)
                }
            }
            _ => rng.gen_range(0usize..3),
        };
        for _ in 0..n_conj {
            if depth > 0 && rng.gen_bool(0.4) {
                conjuncts.push(self.subquery_conjunct(rng, &locals, outer, depth));
            } else {
                conjuncts.push(self.simple_conjunct(rng, &locals));
            }
        }
        if !outer.is_empty() && rng.gen_bool(0.75) {
            conjuncts.push(self.correlation(rng, &locals, outer));
        }
        let where_clause =
            if conjuncts.is_empty() { None } else { Some(Predicate::and(conjuncts)) };

        // SELECT (+ GROUP BY / DISTINCT at the top level only).
        let mut distinct = false;
        let mut group_by = Vec::new();
        let select = match mode {
            BlockMode::OneCol(class) => {
                vec![SelectItem::column(self.pick_col(rng, &locals, Some(class)).cref())]
            }
            BlockMode::OneAgg => vec![self.agg_item(rng, &locals)],
            BlockMode::Top => {
                let roll = rng.gen_range(0u32..100);
                if roll < 20 {
                    // GROUP BY key + aggregates
                    let key = self.pick_col(rng, &locals, None).clone();
                    group_by.push(key.cref());
                    let mut items = vec![SelectItem::column(key.cref())];
                    for _ in 0..rng.gen_range(1usize..3) {
                        items.push(self.agg_item(rng, &locals));
                    }
                    items
                } else if roll < 40 {
                    // global aggregate row
                    (0..rng.gen_range(1usize..3))
                        .map(|_| self.agg_item(rng, &locals))
                        .collect()
                } else {
                    distinct = rng.gen_bool(0.2);
                    (0..rng.gen_range(1usize..4))
                        .map(|_| SelectItem::column(self.pick_col(rng, &locals, None).cref()))
                        .collect()
                }
            }
        };

        QueryBlock { distinct, select, from, where_clause, group_by, order_by: Vec::new() }
    }
}

/// Generate one random differential case: 2–3 tables (always `K`/`V` Int
/// columns, sometimes `F` Float and `S` Str) with biased data, plus a query
/// nested up to three blocks deep.
pub fn gen_case(rng: &mut Rng) -> DiffCase {
    let n_tables = rng.gen_range(2usize..4);
    let mut tables = Vec::with_capacity(n_tables);
    for i in 0..n_tables {
        let mut cols =
            vec![Column::new("K", ColumnType::Int), Column::new("V", ColumnType::Int)];
        if rng.gen_bool(0.5) {
            cols.push(Column::new("F", ColumnType::Float));
        }
        if rng.gen_bool(0.3) {
            cols.push(Column::new("S", ColumnType::Str));
        }
        let rel = gen_relation(rng, Schema::new(cols));
        tables.push((format!("T{i}"), rel));
    }
    let query = {
        let mut qg = QueryGen { tables: &tables, next_alias: 0 };
        qg.block(rng, &[], 2, BlockMode::Top)
    };
    DiffCase { tables, query }
}

// ---------------------------------------------------- static query analysis

fn subquery_blocks<'q>(p: &'q Predicate, out: &mut Vec<&'q QueryBlock>) {
    match p {
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                subquery_blocks(q, out);
            }
        }
        Predicate::Not(q) => subquery_blocks(q, out),
        Predicate::Compare { left, right, .. } => {
            for o in [left, right] {
                if let Operand::Subquery(q) = o {
                    out.push(q);
                }
            }
        }
        Predicate::In { rhs: InRhs::Subquery(q), .. } => out.push(q),
        Predicate::In { .. } | Predicate::IsNull { .. } => {}
        Predicate::Exists { query, .. } => out.push(query),
        Predicate::Quantified { query, .. } => out.push(query),
    }
}

fn walk_blocks<'q>(q: &'q QueryBlock, out: &mut Vec<&'q QueryBlock>) {
    out.push(q);
    if let Some(p) = &q.where_clause {
        let mut subs = Vec::new();
        subquery_blocks(p, &mut subs);
        for s in subs {
            walk_blocks(s, out);
        }
    }
}

/// Does the query contain any construct the transformation turns into a
/// COUNT-family aggregate over correlation keys — aggregate-select
/// subqueries, `EXISTS` (rewritten to `0 < COUNT(*)`), or non-`= ANY`
/// quantifiers (rewritten to MIN/MAX)? Those are the forms whose outer-join
/// grouping diverges from nested iteration when a correlation key is NULL.
fn has_agg_or_exists_subquery(q: &QueryBlock) -> bool {
    fn pred_has(p: &Predicate) -> bool {
        match p {
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().any(pred_has),
            Predicate::Not(p) => pred_has(p),
            Predicate::Exists { .. } => true,
            Predicate::Quantified { op, quantifier, query, .. } => {
                !(*op == CompareOp::Eq && *quantifier == Quantifier::Any)
                    || has_agg_or_exists_subquery(query)
            }
            Predicate::Compare { left, right, .. } => [left, right].into_iter().any(|o| {
                o.as_subquery()
                    .is_some_and(|b| b.has_aggregate_select() || has_agg_or_exists_subquery(b))
            }),
            Predicate::In { rhs: InRhs::Subquery(b), .. } => has_agg_or_exists_subquery(b),
            Predicate::In { .. } | Predicate::IsNull { .. } => false,
        }
    }
    q.where_clause.as_ref().is_some_and(pred_has)
}

/// Does *any* block of the query aggregate (aggregate SELECT or GROUP BY)?
/// Join-expansion duplicates inflate such aggregates, so the duplicates
/// license downgrades to a full skip rather than a set comparison.
fn has_any_aggregate(q: &QueryBlock) -> bool {
    let mut blocks = Vec::new();
    walk_blocks(q, &mut blocks);
    blocks.iter().any(|b| b.has_aggregate_select() || !b.group_by.is_empty())
}

// -------------------------------------------------------------- the checker

/// Why a pipeline was not compared on a case.
const SKIP: bool = false;
/// Marker for a pipeline that was fully compared on a case.
const COMPARED: bool = true;

/// The outcome of checking one case against every pipeline.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Every comparable pipeline agreed with the oracle. Each entry records
    /// the pipeline name and whether it was compared (`true`) or skipped
    /// under a divergence license / unsupported-class refusal (`false`).
    Agree(Vec<(&'static str, bool)>),
    /// A pipeline diverged from the oracle — the property failure.
    Diverge(String),
}

struct Pipeline {
    name: &'static str,
    opts: QueryOptions,
    transform: bool,
    set_only: bool,
}

/// The pipelines under differential test. Nested iteration runs at 1 and 4
/// threads; batched correlated evaluation runs at 1 and 4 threads plus a
/// cache-on variant (held to nested iteration's full-strength contract:
/// bag-equal always, cardinality errors reproduced); the transformation
/// runs under every join policy, in parallel, and in the
/// duplicate-collapsing `ForceDistinct` mode. Row pipelines pin
/// `ExecMode::Row` (not `Auto`) so the sweep diffs both representations
/// even when `NSQL_EXEC_MODE` is set; the `*-vec` pipelines rerun the main
/// shapes under the columnar batch kernels.
fn pipelines() -> Vec<Pipeline> {
    let ni = |threads: usize| QueryOptions {
        strategy: Strategy::NestedIteration,
        cold_start: true,
        threads,
        exec_mode: ExecMode::Row,
        ..Default::default()
    };
    let ba = |threads: usize| QueryOptions {
        strategy: Strategy::Batched,
        cold_start: true,
        threads,
        exec_mode: ExecMode::Row,
        ..Default::default()
    };
    let tr = |policy: JoinPolicy, threads: usize| QueryOptions {
        strategy: Strategy::Transform,
        join_policy: policy,
        cold_start: true,
        threads,
        exec_mode: ExecMode::Row,
        ..Default::default()
    };
    vec![
        Pipeline { name: "ni-serial", opts: ni(1), transform: false, set_only: false },
        Pipeline { name: "ni-par4", opts: ni(4), transform: false, set_only: false },
        // Batched correlated evaluation: same per-row semantics as nested
        // iteration (replay consults exactly the conjunct/binding pairs
        // nested iteration would evaluate, in the same order), so it takes
        // the unlicensed arm of the checker. The `threads` knob only
        // parallelizes the binding sort.
        Pipeline { name: "ba-serial", opts: ba(1), transform: false, set_only: false },
        Pipeline { name: "ba-par4", opts: ba(4), transform: false, set_only: false },
        Pipeline {
            name: "ba-cache",
            opts: QueryOptions { cache: CacheMode::On, ..ba(1) },
            transform: false,
            set_only: false,
        },
        Pipeline {
            name: "tr-cost-serial",
            opts: tr(JoinPolicy::CostBased, 1),
            transform: true,
            set_only: false,
        },
        Pipeline {
            name: "tr-cost-par4",
            opts: tr(JoinPolicy::CostBased, 4),
            transform: true,
            set_only: false,
        },
        Pipeline {
            name: "tr-nestedloop",
            opts: tr(JoinPolicy::ForceNestedLoop, 1),
            transform: true,
            set_only: false,
        },
        Pipeline {
            name: "tr-merge",
            opts: tr(JoinPolicy::ForceMergeJoin, 1),
            transform: true,
            set_only: false,
        },
        Pipeline {
            name: "tr-hash",
            opts: tr(JoinPolicy::ForceHashJoin, 1),
            transform: true,
            set_only: false,
        },
        Pipeline {
            name: "tr-distinct",
            opts: QueryOptions {
                duplicates: DuplicateSemantics::ForceDistinct,
                ..tr(JoinPolicy::CostBased, 1)
            },
            transform: true,
            set_only: true,
        },
        // Index-backed variants: every generated table carries a B+tree on
        // `K` (built by `check_case`), so forcing the index path on and off
        // diffs index-scan plans against full-scan plans against the oracle.
        Pipeline {
            name: "tr-ix-prefer",
            opts: QueryOptions { index_use: IndexUse::Prefer, ..tr(JoinPolicy::CostBased, 1) },
            transform: true,
            set_only: false,
        },
        Pipeline {
            name: "tr-ix-never",
            opts: QueryOptions { index_use: IndexUse::Never, ..tr(JoinPolicy::CostBased, 1) },
            transform: true,
            set_only: false,
        },
        // Vectorized variants: the same semantics under the columnar batch
        // kernels, serial and morsel-parallel. Same license flags as their
        // row counterparts — vectorization must be semantically invisible.
        Pipeline {
            name: "ni-vec",
            opts: QueryOptions { exec_mode: ExecMode::Vector, ..ni(1) },
            transform: false,
            set_only: false,
        },
        Pipeline {
            name: "ni-vec-par4",
            opts: QueryOptions { exec_mode: ExecMode::Vector, ..ni(4) },
            transform: false,
            set_only: false,
        },
        Pipeline {
            name: "tr-vec-cost",
            opts: QueryOptions {
                exec_mode: ExecMode::Vector,
                ..tr(JoinPolicy::CostBased, 1)
            },
            transform: true,
            set_only: false,
        },
        Pipeline {
            name: "tr-vec-hash",
            opts: QueryOptions {
                exec_mode: ExecMode::Vector,
                ..tr(JoinPolicy::ForceHashJoin, 1)
            },
            transform: true,
            set_only: false,
        },
    ]
}

/// Evaluate `case` with the oracle and with every pipeline, applying the
/// license policy from the module docs. Returns [`CaseOutcome::Diverge`]
/// with a full report on the first disagreement.
pub fn check_case(case: &DiffCase) -> CaseOutcome {
    let mut oracle = Oracle::new();
    for (name, rel) in &case.tables {
        oracle.load(name.clone(), rel.clone());
    }
    let sql = nsql_sql::print_query(&case.query);

    // Oracle verdict: a relation + divergence licenses, or a cardinality
    // error every unlicensed pipeline must reproduce. Any *other* oracle
    // error means the query does not resolve — the generator never emits
    // such queries, but structural shrinking can (dropping a FROM entry
    // whose alias is still referenced). Those candidates are vacuous, not
    // divergent: report agreement so the shrinker rejects them.
    let (oracle_rel, notes, oracle_card) = match oracle.eval_noted(&case.query) {
        Ok((rel, notes)) => (Some(rel), notes, None),
        Err(OracleError::ScalarSubqueryCardinality(n)) => (None, Notes::default(), Some(n)),
        Err(_) => return CaseOutcome::Agree(Vec::new()),
    };
    let agg_or_exists = has_agg_or_exists_subquery(&case.query);
    let any_aggregate = has_any_aggregate(&case.query);

    let mut db = Database::with_storage(8, 256);
    for (name, rel) in &case.tables {
        db.catalog_mut().load_table(name, rel).expect("unique generated table names");
        // Every generated table has an Int `K` column; index it so the
        // `tr-ix-*` pipelines exercise index restriction and back-joins.
        db.catalog_mut().create_index(name, "K").expect("K column exists");
    }
    // The analyzer is (deliberately) stricter than the oracle in places —
    // e.g. ambiguity rules. A query it refuses runs on no pipeline, so
    // there is nothing to compare; generated queries always validate
    // (checked by unit test), only shrink candidates can land here.
    if nsql_analyzer::validate_query(db.catalog(), &case.query).is_err() {
        return CaseOutcome::Agree(Vec::new());
    }

    let mut report = Vec::new();
    for p in pipelines() {
        let res = db.run_query(&case.query, &p.opts);

        // License (d): the oracle raised a cardinality error. Nested
        // iteration must raise the same one; transforms evaluate a join
        // where the reference errors, so they are not comparable.
        if let Some(n) = oracle_card {
            if p.transform {
                report.push((p.name, SKIP));
                continue;
            }
            match res {
                Err(nsql_db::DbError::Engine(EngineError::ScalarSubqueryCardinality(m)))
                    if m == n =>
                {
                    report.push((p.name, COMPARED));
                }
                other => {
                    return CaseOutcome::Diverge(format!(
                        "[{}] oracle raised ScalarSubqueryCardinality({n}) but the pipeline \
                         returned {other:?}\n{sql}\ncase:\n{case:?}",
                        p.name
                    ))
                }
            }
            continue;
        }
        let oracle_rel = oracle_rel.as_ref().expect("no cardinality error");

        if p.transform {
            // License (a): ALL over an empty or NULL-containing set — the
            // MIN/MAX rewrite is not row-equivalent there.
            if notes.all_over_empty_or_null {
                report.push((p.name, SKIP));
                continue;
            }
            // License (b): a NULL correlation key was read and the query
            // contains a COUNT-family construct (EXISTS / aggregate
            // subquery / non-=ANY quantifier): the outer-join grouping
            // family diverges.
            if notes.null_outer_ref && agg_or_exists {
                report.push((p.name, SKIP));
                continue;
            }
            // License (c): an IN matched the same value in >1 inner row.
            // Join expansion changes multiplicities: compare as sets, or
            // skip outright when an aggregate would be inflated.
            if notes.dup_in_match && any_aggregate {
                report.push((p.name, SKIP));
                continue;
            }
            let set_only = p.set_only || notes.dup_in_match;
            match res {
                // Outside the transformable class (NOT IN, = ALL, …):
                // refusal, not divergence.
                Err(nsql_db::DbError::Transform(_)) => report.push((p.name, SKIP)),
                // An honest executor refusal on an exotic canonical shape.
                Err(nsql_db::DbError::Engine(EngineError::Unsupported(_))) => {
                    report.push((p.name, SKIP))
                }
                // Join-form evaluation is eager: a type-incompatible
                // comparison that nested iteration short-circuits past
                // (simple predicates filter the row first) still evaluates
                // inside the merged join. Generated queries are well-typed
                // by construction, so this arm only fires on shrink
                // candidates whose select list was rewritten cross-class.
                Err(nsql_db::DbError::Engine(EngineError::Type(_)))
                | Err(nsql_db::DbError::Type(_)) => report.push((p.name, SKIP)),
                Err(other) => {
                    return CaseOutcome::Diverge(format!(
                        "[{}] oracle succeeded but the pipeline errored: {other}\n{sql}\n\
                         oracle:\n{oracle_rel}\ncase:\n{case:?}",
                        p.name
                    ))
                }
                Ok(out) => {
                    let agree = if set_only {
                        out.relation.same_set(oracle_rel)
                    } else {
                        out.relation.same_bag(oracle_rel)
                    };
                    if !agree {
                        return CaseOutcome::Diverge(format!(
                            "[{}] {} disagreement\n{sql}\noracle:\n{oracle_rel}\npipeline:\n{}\n\
                             explain: {:#?}\nnotes: {notes:?}\ncase:\n{case:?}",
                            p.name,
                            if set_only { "set" } else { "bag" },
                            out.relation,
                            out.explain,
                        ));
                    }
                    report.push((p.name, COMPARED));
                }
            }
        } else {
            // Nested iteration: bag-equal to the oracle, always.
            match res {
                Ok(out) => {
                    if !out.relation.same_bag(oracle_rel) {
                        return CaseOutcome::Diverge(format!(
                            "[{}] bag disagreement\n{sql}\noracle:\n{oracle_rel}\npipeline:\n{}\n\
                             case:\n{case:?}",
                            p.name, out.relation,
                        ));
                    }
                    report.push((p.name, COMPARED));
                }
                Err(e) => {
                    return CaseOutcome::Diverge(format!(
                        "[{}] oracle succeeded but nested iteration errored: {e}\n{sql}\n\
                         case:\n{case:?}",
                        p.name
                    ))
                }
            }
        }
    }
    CaseOutcome::Agree(report)
}

// ------------------------------------------- the cache-transparency checker

/// Cache transparency under interleaved DML: every generated query runs on
/// a cache-off database and (twice — once to populate, once to hit) on a
/// cache-on database, with deterministic random INSERTs into every table
/// between rounds. The cache-on runs must be **bit-identical** to the
/// cache-off run in both rows and counted page I/O, and the cache-off run
/// must agree with the oracle under the standard license policy — so a
/// stale cache entry surviving the inserts shows up as a three-way
/// divergence, not a silent wrong answer.
pub fn check_cache_dml_case(case: &DiffCase) -> CaseOutcome {
    let sql = nsql_sql::print_query(&case.query);
    let mut tables: Vec<(String, Relation)> = case.tables.clone();

    let mut db_off = Database::with_storage(8, 256);
    let mut db_on = Database::with_storage(8, 256);
    for (name, rel) in &tables {
        for db in [&mut db_off, &mut db_on] {
            db.catalog_mut().load_table(name, rel).expect("unique generated table names");
            db.catalog_mut().create_index(name, "K").expect("K column exists");
        }
    }
    if nsql_analyzer::validate_query(db_off.catalog(), &case.query).is_err() {
        return CaseOutcome::Agree(Vec::new());
    }
    let agg_or_exists = has_agg_or_exists_subquery(&case.query);
    let any_aggregate = has_any_aggregate(&case.query);

    // The DML stream is seeded from the query text (FNV-1a), so a replayed
    // or shrunk case interleaves exactly the same inserts.
    let mut seed = 0xcbf29ce484222325u64;
    for b in sql.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng = Rng::from_seed(seed);

    let base = |strategy: Strategy| QueryOptions {
        strategy,
        cold_start: true,
        threads: 1,
        exec_mode: ExecMode::Row,
        ..Default::default()
    };
    let variants = [
        ("ni-cache", base(Strategy::NestedIteration), false),
        ("tr-cache", base(Strategy::Transform), true),
    ];

    let mut report = Vec::new();
    for round in 0..2 {
        if round > 0 {
            // Interleaved DML: one or two fresh rows into every table, the
            // same rows on both databases and in the oracle's image. Every
            // cache entry touching these tables must now miss.
            for (name, rel) in &mut tables {
                let n = rng.gen_range(1usize..3);
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(Tuple::new(
                        rel.schema().columns().iter().map(|c| gen_value(&mut rng, c.ty)).collect(),
                    ));
                }
                db_off.catalog_mut().insert(name, rows.clone()).expect("insert into off db");
                db_on.catalog_mut().insert(name, rows.clone()).expect("insert into on db");
                let mut tuples = rel.tuples().to_vec();
                tuples.extend(rows);
                *rel = Relation::new(rel.schema().clone(), tuples).expect("same schema");
            }
        }
        let mut oracle = Oracle::new();
        for (name, rel) in &tables {
            oracle.load(name.clone(), rel.clone());
        }
        let (oracle_rel, notes, oracle_card) = match oracle.eval_noted(&case.query) {
            Ok((rel, notes)) => (Some(rel), notes, None),
            Err(OracleError::ScalarSubqueryCardinality(n)) => (None, Notes::default(), Some(n)),
            Err(_) => return CaseOutcome::Agree(Vec::new()),
        };

        for (name, opts, is_transform) in &variants {
            let off_opts = QueryOptions { cache: CacheMode::Off, ..opts.clone() };
            let on_opts = QueryOptions { cache: CacheMode::On, ..opts.clone() };
            let off = db_off.run_query(&case.query, &off_opts);
            // First cache-on run populates (miss), second one answers from
            // the cache (hit) — both must be indistinguishable from off.
            for label in ["populate", "hit"] {
                let on = db_on.run_query(&case.query, &on_opts);
                match (&off, &on) {
                    (Ok(a), Ok(b)) => {
                        if !a.relation.same_bag(&b.relation) {
                            return CaseOutcome::Diverge(format!(
                                "[{name}] round {round} ({label}): cache-on rows diverge \
                                 from cache-off\n{sql}\noff:\n{}\non:\n{}\nexplain: {:#?}\n\
                                 case:\n{case:?}",
                                a.relation, b.relation, b.explain,
                            ));
                        }
                        if (a.io.reads, a.io.writes) != (b.io.reads, b.io.writes) {
                            return CaseOutcome::Diverge(format!(
                                "[{name}] round {round} ({label}): cache-on I/O {:?} diverges \
                                 from cache-off {:?}\n{sql}\nexplain: {:#?}\ncase:\n{case:?}",
                                (b.io.reads, b.io.writes),
                                (a.io.reads, a.io.writes),
                                b.explain,
                            ));
                        }
                    }
                    (Err(a), Err(b)) if a.to_string() == b.to_string() => {}
                    (a, b) => {
                        return CaseOutcome::Diverge(format!(
                            "[{name}] round {round} ({label}): cache-off returned {a:?} but \
                             cache-on returned {b:?}\n{sql}\ncase:\n{case:?}",
                        ));
                    }
                }
            }

            // Oracle gate on the cache-off run, under the standard license
            // policy (see `check_case`).
            if let Some(n) = oracle_card {
                if *is_transform {
                    report.push((*name, SKIP));
                    continue;
                }
                match &off {
                    Err(nsql_db::DbError::Engine(EngineError::ScalarSubqueryCardinality(m)))
                        if *m == n =>
                    {
                        report.push((*name, COMPARED));
                    }
                    other => {
                        return CaseOutcome::Diverge(format!(
                            "[{name}] round {round}: oracle raised \
                             ScalarSubqueryCardinality({n}) but the pipeline returned \
                             {other:?}\n{sql}\ncase:\n{case:?}",
                        ))
                    }
                }
                continue;
            }
            let oracle_rel = oracle_rel.as_ref().expect("no cardinality error");
            if *is_transform
                && (notes.all_over_empty_or_null
                    || (notes.null_outer_ref && agg_or_exists)
                    || (notes.dup_in_match && any_aggregate))
            {
                report.push((*name, SKIP));
                continue;
            }
            match &off {
                Err(nsql_db::DbError::Transform(_))
                | Err(nsql_db::DbError::Engine(EngineError::Unsupported(_)))
                | Err(nsql_db::DbError::Engine(EngineError::Type(_)))
                | Err(nsql_db::DbError::Type(_))
                    if *is_transform =>
                {
                    report.push((*name, SKIP))
                }
                Err(e) => {
                    return CaseOutcome::Diverge(format!(
                        "[{name}] round {round}: oracle succeeded but the pipeline errored: \
                         {e}\n{sql}\noracle:\n{oracle_rel}\ncase:\n{case:?}",
                    ))
                }
                Ok(out) => {
                    let agree = if *is_transform && notes.dup_in_match {
                        out.relation.same_set(oracle_rel)
                    } else {
                        out.relation.same_bag(oracle_rel)
                    };
                    if !agree {
                        return CaseOutcome::Diverge(format!(
                            "[{name}] round {round}: disagreement with the oracle\n{sql}\n\
                             oracle:\n{oracle_rel}\npipeline:\n{}\nnotes: {notes:?}\n\
                             case:\n{case:?}",
                            out.relation,
                        ));
                    }
                    report.push((*name, COMPARED));
                }
            }
        }
    }
    CaseOutcome::Agree(report)
}

/// Run `cases` random DML-interleaved cache-transparency cases (see
/// [`check_cache_dml_case`]) under the property runner. Returns
/// per-pipeline comparison totals.
pub fn run_cache_dml_property(name: &str, cases: u32) -> Vec<PipelineStats> {
    run_property_with(name, cases, check_cache_dml_case)
}

// ------------------------------------------------------------- the runner

/// Comparison totals for one pipeline across a sweep.
#[derive(Debug, Clone)]
pub struct PipelineStats {
    /// Pipeline name (see [`check_case`]).
    pub name: &'static str,
    /// Cases fully compared against the oracle.
    pub compared: u64,
    /// Cases skipped under a divergence license or unsupported-class
    /// refusal.
    pub skipped: u64,
}

/// Run `cases` random differential cases under the testkit property runner
/// (replayable seeds, greedy shrinking); panic with a shrunk counterexample
/// on the first divergence. Returns per-pipeline comparison totals.
pub fn run_diff_property(name: &str, cases: u32) -> Vec<PipelineStats> {
    run_property_with(name, cases, check_case)
}

/// Shared property-runner plumbing for [`run_diff_property`] and
/// [`run_cache_dml_property`]: generate, check, aggregate per-pipeline
/// totals, panic with the shrunk counterexample on divergence.
fn run_property_with(
    name: &str,
    cases: u32,
    check: impl Fn(&DiffCase) -> CaseOutcome,
) -> Vec<PipelineStats> {
    use std::cell::RefCell;
    let stats: RefCell<Vec<PipelineStats>> = RefCell::new(Vec::new());
    let cfg = nsql_testkit::Config::cases(cases);
    let failure = nsql_testkit::run_property(&cfg, name, gen_case, |case| {
        match check(case) {
            CaseOutcome::Agree(report) => {
                let mut stats = stats.borrow_mut();
                for (pname, compared) in report {
                    let entry = match stats.iter_mut().find(|s| s.name == pname) {
                        Some(e) => e,
                        None => {
                            stats.push(PipelineStats { name: pname, compared: 0, skipped: 0 });
                            stats.last_mut().expect("just pushed")
                        }
                    };
                    if compared {
                        entry.compared += 1;
                    } else {
                        entry.skipped += 1;
                    }
                }
                Ok(())
            }
            CaseOutcome::Diverge(msg) => Err(msg),
        }
    });
    if let Some(f) = failure {
        panic!("{}", f.render());
    }
    stats.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_well_formed_and_resolvable() {
        let mut rng = Rng::from_seed(7);
        for _ in 0..200 {
            let case = gen_case(&mut rng);
            let mut db = Database::with_storage(8, 256);
            for (name, rel) in &case.tables {
                db.catalog_mut().load_table(name, rel).unwrap();
            }
            // Every generated query must pass semantic analysis: the
            // grammar is schema-aware by construction.
            nsql_analyzer::validate_query(db.catalog(), &case.query)
                .unwrap_or_else(|e| panic!("{e}\n{:?}", case));
        }
    }

    #[test]
    fn generator_reaches_the_interesting_regions() {
        let mut rng = Rng::from_seed(11);
        let (mut nested, mut nulls, mut dups, mut grouped) = (0, 0, 0, 0);
        for _ in 0..300 {
            let case = gen_case(&mut rng);
            let mut blocks = Vec::new();
            walk_blocks(&case.query, &mut blocks);
            if blocks.len() > 1 {
                nested += 1;
            }
            if !case.query.group_by.is_empty() {
                grouped += 1;
            }
            for (_, rel) in &case.tables {
                if rel.tuples().iter().any(|t| t.values().iter().any(Value::is_null)) {
                    nulls += 1;
                }
                let c = rel.canonicalized();
                if c.tuples().windows(2).any(|w| w[0] == w[1]) {
                    dups += 1;
                }
            }
        }
        assert!(nested > 100, "nested queries must dominate: {nested}");
        assert!(nulls > 100, "NULL biasing must bite: {nulls}");
        assert!(dups > 100, "duplicate-row biasing must bite: {dups}");
        assert!(grouped > 20, "GROUP BY outer blocks must occur: {grouped}");
    }

    #[test]
    fn shrinking_removes_rows_and_simplifies_queries() {
        let mut rng = Rng::from_seed(3);
        let case = gen_case(&mut rng);
        let total_rows: usize = case.tables.iter().map(|(_, r)| r.len()).sum();
        let candidates = case.shrink();
        let row_removals = candidates
            .iter()
            .filter(|c| c.tables.iter().map(|(_, r)| r.len()).sum::<usize>() + 1 == total_rows)
            .count();
        assert_eq!(row_removals, total_rows, "one candidate per removable row");
        assert!(
            candidates.len() > row_removals,
            "query-structure shrinks must follow row removals"
        );
    }
}
