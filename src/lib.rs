#![warn(missing_docs)]

//! Umbrella crate for the Ganski–Wong (SIGMOD 1987) nested-query
//! optimization reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can use a single dependency. See `README.md` for a
//! tour and `DESIGN.md` for the system inventory.

pub use nsql_analyzer as analyzer;
pub use nsql_core as core;
pub use nsql_db as db;
pub use nsql_engine as engine;
pub use nsql_obs as obs;
pub use nsql_oracle as oracle;
pub use nsql_sql as sql;
pub use nsql_storage as storage;
pub use nsql_testkit as testkit;
pub use nsql_types as types;

pub mod diff;
